package touch

import (
	"fmt"
	"time"

	"trust/internal/geom"
	"trust/internal/sim"
)

// GestureKind classifies one user gesture.
type GestureKind int

// Gesture kinds in the workload mixture.
const (
	Tap GestureKind = iota
	Swipe
	LongPress
	Pinch
)

func (k GestureKind) String() string {
	switch k {
	case Tap:
		return "tap"
	case Swipe:
		return "swipe"
	case LongPress:
		return "long-press"
	case Pinch:
		return "pinch"
	default:
		return fmt.Sprintf("GestureKind(%d)", int(k))
	}
}

// Event is one touch-down the panel will sense: everything the capture
// pipeline needs about the physical interaction.
type Event struct {
	At       time.Duration // virtual time of touch-down
	Pos      geom.Point    // px
	Kind     GestureKind
	Pressure float64
	RadiusMM float64
	// SpeedMMS is the fingertip speed while the sensor window is open
	// (taps ~0; swipes fast enough to smear).
	SpeedMMS float64
	// DwellTime is how long the finger stays down.
	DwellTime time.Duration
	// FingerOffsetMM is where on the fingertip the glass contact
	// landed, in the finger frame relative to the fingertip centre.
	FingerOffsetMM geom.Point
	// FingerRotation is the finger's rotation vs enrolment pose.
	FingerRotation float64
}

// Session is a generated interaction trace for one user.
type Session struct {
	User   UserModel
	Events []Event
}

// Duration returns the time span from zero to the last event's release.
func (s *Session) Duration() time.Duration {
	if len(s.Events) == 0 {
		return 0
	}
	last := s.Events[len(s.Events)-1]
	return last.At + last.DwellTime
}

// GenerateSession produces n touch events of natural interaction for
// the user on the given screen. Swipes contribute several sampled
// touch-downs along their path (each a chance for opportunistic
// capture, at swipe speed); taps and long presses contribute one.
func GenerateSession(u UserModel, screen geom.Rect, n int, rng *sim.RNG) (*Session, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("touch: session length %d", n)
	}
	s := &Session{User: u}
	now := time.Duration(0)
	weights := []float64{u.TapWeight, u.SwipeWeight, u.LongPressWeight, u.PinchWeight}

	for len(s.Events) < n {
		now += time.Duration(rng.Exp(float64(u.InterGestureMean)))
		kind := GestureKind(rng.Pick(weights))
		switch kind {
		case Tap:
			s.Events = append(s.Events, u.touchDown(now, kind, u.SamplePoint(screen, rng), 0, 110*time.Millisecond, rng))
			now += 110 * time.Millisecond
		case LongPress:
			s.Events = append(s.Events, u.touchDown(now, kind, u.SamplePoint(screen, rng), 0, 600*time.Millisecond, rng))
			now += 600 * time.Millisecond
		case Swipe:
			// A swipe is ONE touch-down followed by motion. The sensor
			// scan completes within ~1 ms of touch-down, so the capture
			// sees the onset speed, not the peak swipe speed; flicks
			// with a fast onset still smear (paper's "move too fast").
			start := u.SamplePoint(screen, rng)
			onset := u.SwipeSpeedMMS * (0.05 + 0.45*rng.Float64())
			s.Events = append(s.Events, u.touchDown(now, kind, start, onset, 350*time.Millisecond, rng))
			now += 350 * time.Millisecond
		case Pinch:
			c := u.SamplePoint(screen, rng)
			for _, d := range []float64{-40, 40} {
				if len(s.Events) >= n {
					break
				}
				pos := screen.Inset(1).Clamp(geom.Point{X: c.X + d, Y: c.Y + d/2})
				onset := u.SwipeSpeedMMS * (0.05 + 0.3*rng.Float64())
				s.Events = append(s.Events, u.touchDown(now, kind, pos, onset, 250*time.Millisecond, rng))
			}
			now += 400 * time.Millisecond
		}
	}
	s.Events = s.Events[:n]
	return s, nil
}

// touchDown builds one Event with the user's contact statistics.
func (u UserModel) touchDown(at time.Duration, kind GestureKind, pos geom.Point, speed float64, dwell time.Duration, rng *sim.RNG) Event {
	pressure := rng.Normal(u.PressureMean, u.PressureSigma)
	if pressure < 0.05 {
		pressure = 0.05
	}
	if pressure > 1 {
		pressure = 1
	}
	radius := rng.Normal(u.ContactRadiusMeanMM, u.ContactRadiusSigmaMM)
	if radius < 2 {
		radius = 2
	}
	return Event{
		At:        at,
		Pos:       pos,
		Kind:      kind,
		Pressure:  pressure,
		RadiusMM:  radius,
		SpeedMMS:  speed,
		DwellTime: dwell,
		FingerOffsetMM: geom.Point{
			X: rng.Normal(0, 1.4),
			Y: rng.Normal(0, 1.8),
		},
		FingerRotation: rng.Normal(0, u.FingerRotSigmaRad),
	}
}
