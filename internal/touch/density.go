package touch

import (
	"fmt"
	"math"
	"strings"

	"trust/internal/geom"
)

// DensityGrid is a 2-D histogram of touch locations over the screen —
// the data structure behind the paper's Fig 7 heatmaps and the input to
// the sensor placement optimizer.
type DensityGrid struct {
	screen geom.Rect
	cols   int
	rows   int
	counts []float64
	total  float64
}

// NewDensityGrid builds an empty grid of cols x rows cells over the
// screen rectangle (pixel space).
func NewDensityGrid(screen geom.Rect, cols, rows int) *DensityGrid {
	if cols <= 0 || rows <= 0 {
		panic("touch: non-positive density grid size")
	}
	return &DensityGrid{
		screen: screen,
		cols:   cols,
		rows:   rows,
		counts: make([]float64, cols*rows),
	}
}

// Size returns (cols, rows).
func (g *DensityGrid) Size() (cols, rows int) { return g.cols, g.rows }

// Screen returns the pixel rectangle the grid covers.
func (g *DensityGrid) Screen() geom.Rect { return g.screen }

// Total returns the number of accumulated touches.
func (g *DensityGrid) Total() float64 { return g.total }

// CellRect returns the pixel rectangle of cell (cx, cy).
func (g *DensityGrid) CellRect(cx, cy int) geom.Rect {
	cw := g.screen.W() / float64(g.cols)
	ch := g.screen.H() / float64(g.rows)
	return geom.RectWH(g.screen.Min.X+float64(cx)*cw, g.screen.Min.Y+float64(cy)*ch, cw, ch)
}

// cellIndex maps a point to its cell, reporting ok=false off-screen.
func (g *DensityGrid) cellIndex(p geom.Point) (int, bool) {
	if !g.screen.Contains(p) {
		return 0, false
	}
	cx := int((p.X - g.screen.Min.X) / g.screen.W() * float64(g.cols))
	cy := int((p.Y - g.screen.Min.Y) / g.screen.H() * float64(g.rows))
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx, true
}

// Add accumulates one touch. Off-screen points are ignored.
func (g *DensityGrid) Add(p geom.Point) {
	if i, ok := g.cellIndex(p); ok {
		g.counts[i]++
		g.total++
	}
}

// AddSession accumulates every event of a session.
func (g *DensityGrid) AddSession(s *Session) {
	for _, e := range s.Events {
		g.Add(e.Pos)
	}
}

// Count returns the raw count in cell (cx, cy).
func (g *DensityGrid) Count(cx, cy int) float64 {
	if cx < 0 || cx >= g.cols || cy < 0 || cy >= g.rows {
		panic("touch: density cell out of range")
	}
	return g.counts[cy*g.cols+cx]
}

// Prob returns the fraction of all touches that landed in cell (cx,
// cy); zero when the grid is empty.
func (g *DensityGrid) Prob(cx, cy int) float64 {
	if g.total == 0 {
		return 0
	}
	return g.Count(cx, cy) / g.total
}

// MassIn returns the fraction of touches inside the pixel rectangle r,
// approximated by cell-centre membership.
func (g *DensityGrid) MassIn(r geom.Rect) float64 {
	if g.total == 0 {
		return 0
	}
	mass := 0.0
	for cy := 0; cy < g.rows; cy++ {
		for cx := 0; cx < g.cols; cx++ {
			if r.Contains(g.CellRect(cx, cy).Center()) {
				mass += g.counts[cy*g.cols+cx]
			}
		}
	}
	return mass / g.total
}

// Overlap returns the Bhattacharyya coefficient between two grids of
// identical geometry: 1 for identical distributions, 0 for disjoint.
// The paper's Fig 7 observation — different users' hot-spots overlap —
// is quantified with this.
func Overlap(a, b *DensityGrid) (float64, error) {
	if a.cols != b.cols || a.rows != b.rows {
		return 0, fmt.Errorf("touch: overlap of %dx%d grid with %dx%d grid", a.cols, a.rows, b.cols, b.rows)
	}
	if a.total == 0 || b.total == 0 {
		return 0, fmt.Errorf("touch: overlap of empty grid")
	}
	sum := 0.0
	for i := range a.counts {
		sum += math.Sqrt(a.counts[i] / a.total * b.counts[i] / b.total)
	}
	return sum, nil
}

// ASCII renders the grid as a heatmap using a density ramp, the
// benchtab rendition of Fig 7.
func (g *DensityGrid) ASCII() string {
	ramp := []byte(" .:-=+*#%@")
	maxCount := 0.0
	for _, c := range g.counts {
		maxCount = math.Max(maxCount, c)
	}
	var sb strings.Builder
	for cy := 0; cy < g.rows; cy++ {
		for cx := 0; cx < g.cols; cx++ {
			level := 0
			if maxCount > 0 {
				level = int(g.Count(cx, cy) / maxCount * float64(len(ramp)-1))
			}
			sb.WriteByte(ramp[level])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
