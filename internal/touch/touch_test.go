package touch

import (
	"testing"
	"time"

	"trust/internal/geom"
	"trust/internal/sim"
)

var screen = geom.RectWH(0, 0, 480, 800)

func TestReferenceUsersValid(t *testing.T) {
	users := ReferenceUsers()
	if len(users) != 3 {
		t.Fatalf("got %d reference users, want 3 (Fig 7)", len(users))
	}
	seen := map[uint64]bool{}
	for _, u := range users {
		if err := u.Validate(); err != nil {
			t.Errorf("user %s: %v", u.Name, err)
		}
		if seen[u.FingerSeed] {
			t.Errorf("user %s shares a finger seed", u.Name)
		}
		seen[u.FingerSeed] = true
	}
}

func TestSamplePointOnScreen(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, u := range ReferenceUsers() {
		for i := 0; i < 2000; i++ {
			p := u.SamplePoint(screen, rng)
			if !screen.Contains(p) {
				t.Fatalf("user %s sampled off-screen point %v", u.Name, p)
			}
		}
	}
}

func TestSamplePointConcentratesAtHotspots(t *testing.T) {
	rng := sim.NewRNG(2)
	u := ReferenceUsers()[0]
	near := 0
	const n = 5000
	for i := 0; i < n; i++ {
		p := u.SamplePoint(screen, rng)
		for _, h := range u.Hotspots {
			if p.Dist(h.Center) < 3*h.SigmaPX {
				near++
				break
			}
		}
	}
	if frac := float64(near) / n; frac < 0.9 {
		t.Fatalf("only %.2f of touches near declared hotspots", frac)
	}
}

func TestGenerateSessionLength(t *testing.T) {
	rng := sim.NewRNG(3)
	for _, n := range []int{1, 10, 500} {
		s, err := GenerateSession(ReferenceUsers()[1], screen, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Events) != n {
			t.Fatalf("session has %d events, want %d", len(s.Events), n)
		}
	}
}

func TestGenerateSessionRejectsBadInput(t *testing.T) {
	rng := sim.NewRNG(4)
	if _, err := GenerateSession(ReferenceUsers()[0], screen, 0, rng); err == nil {
		t.Error("zero-length session accepted")
	}
	if _, err := GenerateSession(UserModel{Name: "x"}, screen, 5, rng); err == nil {
		t.Error("hotspot-free user accepted")
	}
}

func TestSessionEventsOrderedAndOnScreen(t *testing.T) {
	rng := sim.NewRNG(5)
	s, err := GenerateSession(ReferenceUsers()[2], screen, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := time.Duration(-1)
	for i, e := range s.Events {
		if e.At < prev {
			t.Fatalf("event %d at %v before previous %v", i, e.At, prev)
		}
		prev = e.At
		if !screen.Contains(e.Pos) {
			t.Fatalf("event %d off-screen at %v", i, e.Pos)
		}
		if e.Pressure <= 0 || e.Pressure > 1 {
			t.Fatalf("event %d pressure %v", i, e.Pressure)
		}
		if e.RadiusMM < 2 {
			t.Fatalf("event %d radius %v", i, e.RadiusMM)
		}
		if e.DwellTime <= 0 {
			t.Fatalf("event %d dwell %v", i, e.DwellTime)
		}
	}
	if s.Duration() <= 0 {
		t.Fatal("session duration not positive")
	}
}

func TestSessionMixesGestures(t *testing.T) {
	rng := sim.NewRNG(6)
	s, _ := GenerateSession(ReferenceUsers()[0], screen, 800, rng)
	kinds := map[GestureKind]int{}
	for _, e := range s.Events {
		kinds[e.Kind]++
	}
	for _, k := range []GestureKind{Tap, Swipe, LongPress} {
		if kinds[k] == 0 {
			t.Errorf("no %v gestures in an 800-event session", k)
		}
	}
}

func TestSwipesFasterThanTaps(t *testing.T) {
	rng := sim.NewRNG(7)
	s, _ := GenerateSession(ReferenceUsers()[0], screen, 800, rng)
	var tapMax, swipeMax float64
	for _, e := range s.Events {
		switch e.Kind {
		case Tap:
			if e.SpeedMMS > tapMax {
				tapMax = e.SpeedMMS
			}
		case Swipe:
			if e.SpeedMMS > swipeMax {
				swipeMax = e.SpeedMMS
			}
		}
	}
	if swipeMax <= tapMax {
		t.Fatalf("swipe max speed %v not above tap max %v", swipeMax, tapMax)
	}
}

func TestDensityGridAccumulates(t *testing.T) {
	g := NewDensityGrid(screen, 12, 20)
	g.Add(geom.Point{X: 10, Y: 10})
	g.Add(geom.Point{X: 10, Y: 10})
	g.Add(geom.Point{X: 470, Y: 790})
	g.Add(geom.Point{X: -5, Y: 10}) // off-screen, ignored
	if g.Total() != 3 {
		t.Fatalf("total = %v, want 3", g.Total())
	}
	if g.Count(0, 0) != 2 {
		t.Fatalf("corner cell = %v, want 2", g.Count(0, 0))
	}
	if g.Prob(0, 0) < 0.6 {
		t.Fatalf("corner prob = %v", g.Prob(0, 0))
	}
}

func TestDensityGridMassIn(t *testing.T) {
	g := NewDensityGrid(screen, 12, 20)
	for i := 0; i < 100; i++ {
		g.Add(geom.Point{X: 100, Y: 100})
	}
	if m := g.MassIn(geom.RectWH(0, 0, 240, 400)); m != 1 {
		t.Fatalf("mass in covering quadrant = %v, want 1", m)
	}
	if m := g.MassIn(geom.RectWH(240, 400, 240, 400)); m != 0 {
		t.Fatalf("mass in empty quadrant = %v, want 0", m)
	}
}

func TestOverlapIdentityAndDisjoint(t *testing.T) {
	a := NewDensityGrid(screen, 12, 20)
	b := NewDensityGrid(screen, 12, 20)
	c := NewDensityGrid(screen, 12, 20)
	for i := 0; i < 50; i++ {
		a.Add(geom.Point{X: 100, Y: 100})
		b.Add(geom.Point{X: 100, Y: 100})
		c.Add(geom.Point{X: 400, Y: 700})
	}
	if ov, err := Overlap(a, b); err != nil || ov < 0.999 {
		t.Fatalf("identical overlap = %v, %v", ov, err)
	}
	if ov, err := Overlap(a, c); err != nil || ov > 1e-9 {
		t.Fatalf("disjoint overlap = %v, %v", ov, err)
	}
}

func TestOverlapErrors(t *testing.T) {
	a := NewDensityGrid(screen, 12, 20)
	b := NewDensityGrid(screen, 10, 20)
	if _, err := Overlap(a, b); err == nil {
		t.Error("mismatched grids accepted")
	}
	c := NewDensityGrid(screen, 12, 20)
	if _, err := Overlap(a, c); err == nil {
		t.Error("empty grids accepted")
	}
}

func TestReferenceUsersShareKeyboardRegion(t *testing.T) {
	// The paper's placement argument requires cross-user hot-spot
	// overlap; the keyboard band must attract substantial mass for all
	// three users.
	rng := sim.NewRNG(8)
	keyboard := geom.RectWH(40, 620, 400, 175)
	for _, u := range ReferenceUsers() {
		g := NewDensityGrid(screen, 24, 40)
		s, _ := GenerateSession(u, screen, 2000, rng)
		g.AddSession(s)
		if m := g.MassIn(keyboard); m < 0.2 {
			t.Errorf("user %s keyboard mass %.3f, want >= 0.2", u.Name, m)
		}
	}
}

func TestReferenceUsersPairwiseOverlap(t *testing.T) {
	rng := sim.NewRNG(9)
	users := ReferenceUsers()
	grids := make([]*DensityGrid, len(users))
	for i, u := range users {
		grids[i] = NewDensityGrid(screen, 24, 40)
		s, _ := GenerateSession(u, screen, 3000, rng)
		grids[i].AddSession(s)
	}
	for i := 0; i < len(grids); i++ {
		for j := i + 1; j < len(grids); j++ {
			ov, err := Overlap(grids[i], grids[j])
			if err != nil {
				t.Fatal(err)
			}
			if ov < 0.3 || ov > 0.95 {
				t.Errorf("users %d/%d overlap %.3f: want distinct-but-overlapping (0.3..0.95)", i, j, ov)
			}
		}
	}
}

func TestDensityASCIIShape(t *testing.T) {
	g := NewDensityGrid(screen, 12, 20)
	for i := 0; i < 10; i++ {
		g.Add(geom.Point{X: 240, Y: 400})
	}
	art := g.ASCII()
	lines := 0
	for _, r := range art {
		if r == '\n' {
			lines++
		}
	}
	if lines != 20 {
		t.Fatalf("ASCII has %d lines, want 20", lines)
	}
}

func TestGestureKindStrings(t *testing.T) {
	for _, k := range []GestureKind{Tap, Swipe, LongPress, Pinch} {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", int(k))
		}
	}
}
