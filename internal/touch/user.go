// Package touch models how people touch phones: per-user hot-spot
// mixtures (the paper's Fig 7 shows three users' touch densities on an
// HTC smartphone), gesture kinematics (taps, swipes, long presses,
// pinches), and session workload generation. It supplies both the
// placement optimizer (where do touches land?) and the continuous
// authentication pipeline (how fast was the finger moving? how hard
// pressing?) with realistic inputs.
package touch

import (
	"fmt"
	"time"

	"trust/internal/geom"
	"trust/internal/sim"
)

// Hotspot is one mode of a user's touch density: an isotropic Gaussian
// in pixel space.
type Hotspot struct {
	Center  geom.Point // px
	SigmaPX float64
	Weight  float64
}

// UserModel captures one user's touch behaviour: where they touch
// (hot-spot mixture), how they touch (pressure, dwell, contact size),
// and which finger they use (the seed feeding the fingerprint
// substrate).
type UserModel struct {
	Name       string
	FingerSeed uint64 // synthesizes this user's fingerprint
	Hotspots   []Hotspot

	// Gesture mixture (weights; normalized on use).
	TapWeight, SwipeWeight, LongPressWeight, PinchWeight float64

	PressureMean, PressureSigma float64
	ContactRadiusMeanMM         float64
	ContactRadiusSigmaMM        float64
	FingerRotSigmaRad           float64
	// InterGestureMean is the mean think time between gestures.
	InterGestureMean time.Duration
	SwipeSpeedMMS    float64 // typical fingertip speed mid-swipe
}

// Validate reports whether the model is usable.
func (u UserModel) Validate() error {
	if len(u.Hotspots) == 0 {
		return fmt.Errorf("touch: user %q has no hotspots", u.Name)
	}
	total := 0.0
	for _, h := range u.Hotspots {
		if h.Weight < 0 || h.SigmaPX <= 0 {
			return fmt.Errorf("touch: user %q has invalid hotspot %+v", u.Name, h)
		}
		total += h.Weight
	}
	if total <= 0 {
		return fmt.Errorf("touch: user %q hotspot weights sum to zero", u.Name)
	}
	return nil
}

// SamplePoint draws one touch location in pixel space, clamped to the
// screen.
func (u UserModel) SamplePoint(screen geom.Rect, rng *sim.RNG) geom.Point {
	weights := make([]float64, len(u.Hotspots))
	for i, h := range u.Hotspots {
		weights[i] = h.Weight
	}
	h := u.Hotspots[rng.Pick(weights)]
	p := geom.Point{
		X: rng.Normal(h.Center.X, h.SigmaPX),
		Y: rng.Normal(h.Center.Y, h.SigmaPX),
	}
	return screen.Inset(1).Clamp(p)
}

// ReferenceUsers returns three user models with the qualitative
// properties of the paper's Fig 7: all three share the bottom
// keyboard/navigation hot region (the overlap the paper exploits for
// placement) while differing in grip — a right-thumb user, a two-thumb
// user, and an index-finger user.
func ReferenceUsers() []UserModel {
	base := func(name string, seed uint64, spots []Hotspot) UserModel {
		return UserModel{
			Name:                 name,
			FingerSeed:           seed,
			Hotspots:             spots,
			TapWeight:            0.62,
			SwipeWeight:          0.25,
			LongPressWeight:      0.08,
			PinchWeight:          0.05,
			PressureMean:         0.62,
			PressureSigma:        0.15,
			ContactRadiusMeanMM:  4.1,
			ContactRadiusSigmaMM: 0.5,
			FingerRotSigmaRad:    0.22,
			InterGestureMean:     1200 * time.Millisecond,
			SwipeSpeedMMS:        95,
		}
	}
	// Screen: 480x800 px. The shared keyboard band sits at y ~ 650-790.
	return []UserModel{
		base("user1-right-thumb", 101, []Hotspot{
			{Center: geom.Point{X: 340, Y: 700}, SigmaPX: 55, Weight: 0.40}, // keyboard right
			{Center: geom.Point{X: 240, Y: 730}, SigmaPX: 70, Weight: 0.25}, // keyboard centre
			{Center: geom.Point{X: 390, Y: 520}, SigmaPX: 60, Weight: 0.20}, // right-edge scroll
			{Center: geom.Point{X: 240, Y: 300}, SigmaPX: 90, Weight: 0.15}, // content taps
		}),
		base("user2-two-thumbs", 202, []Hotspot{
			{Center: geom.Point{X: 120, Y: 720}, SigmaPX: 55, Weight: 0.30},  // left thumb keys
			{Center: geom.Point{X: 360, Y: 720}, SigmaPX: 55, Weight: 0.30},  // right thumb keys
			{Center: geom.Point{X: 240, Y: 740}, SigmaPX: 60, Weight: 0.20},  // space bar
			{Center: geom.Point{X: 240, Y: 420}, SigmaPX: 100, Weight: 0.20}, // content
		}),
		base("user3-index-finger", 303, []Hotspot{
			{Center: geom.Point{X: 240, Y: 380}, SigmaPX: 95, Weight: 0.35}, // content centre
			{Center: geom.Point{X: 240, Y: 710}, SigmaPX: 75, Weight: 0.30}, // keyboard
			{Center: geom.Point{X: 100, Y: 150}, SigmaPX: 60, Weight: 0.15}, // back/menu
			{Center: geom.Point{X: 240, Y: 60}, SigmaPX: 70, Weight: 0.20},  // address bar
		}),
	}
}
