package device

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"trust/internal/protocol"
	"trust/internal/webserver"
)

// Stream is the multiplexed session transport: one long-lived framed
// connection per device instead of one HTTP request per touch. The
// registration and login flows (which predate a session) ride the
// Fallback transport; once a session is bound, page requests, batches,
// and resyncs travel as frames on the stream, with response nonces
// walking the deterministic per-connection chain the welcome seeded —
// no per-request connection setup, header parsing, or server entropy
// draw on the continuous-auth hot path.
//
// Failure handling mirrors the paper's graceful-degradation stance:
//
//   - dial or hello fails → sticky downgrade, every call uses Fallback
//     (the device keeps working over plain HTTP);
//   - an ESTABLISHED stream dies (cut, torn frame, reorder) → the next
//     submit redials and re-binds; the in-flight request surfaces as
//     ErrNetwork so the retry layer redelivers, and a stale nonce after
//     re-binding recovers through the ordinary bad-nonce resync path.
type Stream struct {
	// Dial opens a raw connection to the server's stream listener
	// (net.Dial in deployment, net.Pipe or a fault-injecting wrapper in
	// tests).
	Dial func() (io.ReadWriteCloser, error)
	// Fallback carries everything the stream cannot: pre-session flows
	// always, and all traffic after a downgrade.
	Fallback Transport
	// OnPolicy, when non-nil, observes every server-pushed risk policy
	// (welcome and policy-push frames) after MAC verification.
	OnPolicy func(window, minVerified int)

	mu      sync.Mutex
	sess    *protocol.Session
	conn    *streamClientConn
	down    bool // sticky: dial/hello failed, Fallback carries everything
	pending *pendingResume

	// Stats counters (under mu).
	dials     int
	redials   int
	downgrade int
}

var _ Transport = (*Stream)(nil)

// StreamStats reports connection-lifecycle counts for tests and the
// load harness.
type StreamStats struct {
	Dials      int
	Redials    int
	Downgrades int
}

// Stats snapshots the lifecycle counters.
func (t *Stream) Stats() StreamStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return StreamStats{Dials: t.dials, Redials: t.redials, Downgrades: t.downgrade}
}

// Streaming reports whether the transport currently holds a live
// stream (false before BindSession, after a downgrade, or between a
// cut and the redial).
func (t *Stream) Streaming() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.down && t.conn != nil && t.conn.alive()
}

// BindSession points the stream at an established session and eagerly
// dials so the first Browse already has the chain nonce. A failed dial
// downgrades to the Fallback transport; the device still works, so the
// error is not surfaced. When a SubmitResume handshake left a pending
// connection, the session adopts it instead of redialing — the resume
// round trip already seeded the nonce chain.
func (t *Stream) BindSession(sess *protocol.Session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sess = sess
	t.down = false
	if t.conn != nil {
		t.conn.fail(errors.New("device: stream rebound"))
		t.conn = nil
	}
	if p := t.pending; p != nil {
		t.pending = nil
		if t.adoptPendingLocked(p, sess) {
			return
		}
	}
	if t.Dial == nil {
		t.down = true
		t.downgrade++
		return
	}
	if err := t.redialLocked(); err != nil {
		t.down = true
		t.downgrade++
	}
}

// pendingResume is a connection opened by SubmitResume whose welcome
// could not yet be verified: the resumed session key only exists after
// the device accepts the resume content page. BindSession finishes the
// verification and promotes the connection to the live stream.
type pendingResume struct {
	rwc io.ReadWriteCloser
	br  *bufio.Reader
	w   *protocol.StreamWelcome
}

// clearPending closes and forgets any leftover pending connection
// (a resume that was never bound, or was superseded).
func (t *Stream) clearPending() {
	t.mu.Lock()
	p := t.pending
	t.pending = nil
	t.mu.Unlock()
	if p != nil {
		p.rwc.Close()
	}
}

// adoptPendingLocked verifies a pending resume connection's welcome
// under the now-established session and installs it as the live
// stream. Returns false (connection closed) if verification fails —
// the caller then redials the ordinary hello handshake. Caller holds
// t.mu.
func (t *Stream) adoptPendingLocked(p *pendingResume, sess *protocol.Session) bool {
	window, minVerified, err := protocol.AcceptStreamWelcome(sess, p.w)
	if err != nil {
		p.rwc.Close()
		return false
	}
	if t.OnPolicy != nil {
		t.OnPolicy(window, minVerified)
	}
	seed := append([]byte(nil), p.w.NonceSeed...)
	c := &streamClientConn{
		rwc:      p.rwc,
		br:       p.br,
		chain:    protocol.NewNonceChain(sess.Key, seed),
		sess:     sess,
		seed:     seed,
		onPolicy: t.OnPolicy,
		// The resume frame spent sequence number 1; the chain head was
		// delivered with the resume content page, so prediction starts
		// at position 0 exactly as after a hello welcome.
		nextSeq: 1,
	}
	t.conn = c
	t.dials++
	go c.readLoop()
	return true
}

// SubmitResume implements Transport: dial and open with a resume frame
// — ticket verification, session creation, and nonce-chain seeding in
// a single round trip. The welcome cannot be verified here (the
// resumed key is derived only once the device accepts the content
// page), so the connection parks as pending until BindSession adopts
// it. On a downgraded transport (or no Dial) the resume rides the
// Fallback like the other pre-session flows.
func (t *Stream) SubmitResume(now time.Duration, sub *protocol.ResumeSubmit) (*protocol.ContentPage, error) {
	t.clearPending()
	t.mu.Lock()
	canStream := t.Dial != nil && !t.down
	t.mu.Unlock()
	if !canStream {
		return t.Fallback.SubmitResume(now, sub)
	}
	rwc, err := t.Dial()
	if err != nil {
		return nil, fmt.Errorf("%w: stream dial: %v", ErrNetwork, err)
	}
	payload, err := protocol.EncodeResumeFrame(1, now, sub)
	if err != nil {
		rwc.Close()
		return nil, err
	}
	if err := protocol.WriteFrame(rwc, protocol.FrameResume, payload); err != nil {
		rwc.Close()
		return nil, fmt.Errorf("%w: stream resume: %v", ErrNetwork, err)
	}
	br := bufio.NewReaderSize(rwc, 32<<10)
	ft, p, err := protocol.ReadFrame(br)
	if err != nil {
		rwc.Close()
		return nil, fmt.Errorf("%w: stream resume welcome: %v", ErrNetwork, err)
	}
	var w *protocol.StreamWelcome
	switch ft {
	case protocol.FrameWelcome:
		msg, err := protocol.DecodeBinary(p)
		if err != nil {
			rwc.Close()
			return nil, err
		}
		var ok bool
		if w, ok = msg.(*protocol.StreamWelcome); !ok {
			rwc.Close()
			return nil, fmt.Errorf("device: welcome frame carries %T", msg)
		}
	case protocol.FrameAck:
		_, code, detail, aerr := protocol.DecodeAck(p)
		rwc.Close()
		if aerr != nil {
			return nil, aerr
		}
		return nil, ackError(code, detail)
	default:
		rwc.Close()
		return nil, fmt.Errorf("device: stream resume handshake got %s frame", ft)
	}
	ft, p, err = protocol.ReadFrame(br)
	if err != nil {
		rwc.Close()
		return nil, fmt.Errorf("%w: stream resume page: %v", ErrNetwork, err)
	}
	if ft != protocol.FramePage {
		rwc.Close()
		return nil, fmt.Errorf("device: stream resume handshake got %s frame", ft)
	}
	seq, index, cp, err := protocol.DecodePageFrame(p)
	if err != nil {
		rwc.Close()
		return nil, err
	}
	if seq != 1 || index != 0 {
		rwc.Close()
		return nil, fmt.Errorf("device: resume page frame seq %d/%d does not match 1/0", seq, index)
	}
	t.mu.Lock()
	t.pending = &pendingResume{rwc: rwc, br: br, w: w}
	t.mu.Unlock()
	return cp, nil
}

// live returns a connected stream, redialing a dead one. It fails —
// and sticks the downgrade on dial/hello failure — rather than
// silently falling back, so callers decide per method what the
// fallback is.
func (t *Stream) live() (*streamClientConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down {
		return nil, fmt.Errorf("%w: stream downgraded", ErrNetwork)
	}
	if t.sess == nil {
		return nil, errors.New("device: stream has no bound session")
	}
	if t.conn != nil && t.conn.alive() {
		return t.conn, nil
	}
	if t.conn != nil {
		t.redials++
	}
	if err := t.redialLocked(); err != nil {
		t.down = true
		t.downgrade++
		return nil, err
	}
	return t.conn, nil
}

// redialLocked dials and runs the hello/welcome exchange synchronously
// (the reader goroutine starts only after the welcome, so the handshake
// cannot race pushed frames). Caller holds t.mu.
func (t *Stream) redialLocked() error {
	rwc, err := t.Dial()
	if err != nil {
		return fmt.Errorf("%w: stream dial: %v", ErrNetwork, err)
	}
	hello, err := protocol.BuildStreamHello(t.sess)
	if err != nil {
		rwc.Close()
		return err
	}
	hp, err := protocol.EncodeBinary(hello)
	if err != nil {
		rwc.Close()
		return err
	}
	if err := protocol.WriteFrame(rwc, protocol.FrameHello, hp); err != nil {
		rwc.Close()
		return fmt.Errorf("%w: stream hello: %v", ErrNetwork, err)
	}
	// All reads on this connection — the welcome here and every frame
	// the read loop consumes — share one buffered reader, halving the
	// syscall count of ReadFrame's header+payload read pairs.
	br := bufio.NewReaderSize(rwc, 32<<10)
	ft, payload, err := protocol.ReadFrame(br)
	if err != nil {
		rwc.Close()
		return fmt.Errorf("%w: stream welcome: %v", ErrNetwork, err)
	}
	var seed []byte
	switch ft {
	case protocol.FrameWelcome:
		msg, err := protocol.DecodeBinary(payload)
		if err != nil {
			rwc.Close()
			return err
		}
		w, ok := msg.(*protocol.StreamWelcome)
		if !ok {
			rwc.Close()
			return fmt.Errorf("device: welcome frame carries %T", msg)
		}
		window, minVerified, err := protocol.AcceptStreamWelcome(t.sess, w)
		if err != nil {
			rwc.Close()
			return err
		}
		seed = append([]byte(nil), w.NonceSeed...)
		if t.OnPolicy != nil {
			t.OnPolicy(window, minVerified)
		}
	case protocol.FrameAck:
		_, code, detail, aerr := protocol.DecodeAck(payload)
		rwc.Close()
		if aerr != nil {
			return aerr
		}
		return ackError(code, detail)
	default:
		rwc.Close()
		return fmt.Errorf("device: stream handshake got %s frame", ft)
	}
	c := &streamClientConn{
		rwc:      rwc,
		br:       br,
		chain:    protocol.NewNonceChain(t.sess.Key, seed),
		sess:     t.sess,
		seed:     seed,
		onPolicy: t.OnPolicy,
	}
	t.conn = c
	t.dials++
	go c.readLoop()
	return nil
}

// ackError converts an ack frame's wire code back into the typed
// sentinel the HTTP transport would have produced, so the retry layer
// classifies stream rejections identically.
func ackError(code, detail string) error {
	if base := webserver.ErrorFromCode(code); base != nil {
		return fmt.Errorf("device: stream request rejected: %w (%s)", base, detail)
	}
	return fmt.Errorf("device: stream request rejected: %s (%s)", code, detail)
}

// PredictNonce returns the nonce the session will hold after `ahead`
// more responses on the live stream — the chain value a batched
// request at that offset must echo. ok is false when no live stream
// exists (callers should fall back to sequential requests).
func (t *Stream) PredictNonce(ahead int) (protocol.Nonce, bool) {
	t.mu.Lock()
	conn := t.conn
	down := t.down
	t.mu.Unlock()
	if down || conn == nil || !conn.alive() {
		return "", false
	}
	return conn.predictNonce(ahead), true
}

// FetchRegistrationPage implements Transport (pre-session: Fallback).
func (t *Stream) FetchRegistrationPage(now time.Duration) (*protocol.RegistrationPage, error) {
	return t.Fallback.FetchRegistrationPage(now)
}

// SubmitRegistration implements Transport (pre-session: Fallback).
func (t *Stream) SubmitRegistration(now time.Duration, sub *protocol.RegistrationSubmit, recovery string) (protocol.RegistrationResult, error) {
	return t.Fallback.SubmitRegistration(now, sub, recovery)
}

// FetchLoginPage implements Transport (pre-session: Fallback).
func (t *Stream) FetchLoginPage(now time.Duration) (*protocol.LoginPage, error) {
	return t.Fallback.FetchLoginPage(now)
}

// SubmitLogin implements Transport (pre-session: Fallback).
func (t *Stream) SubmitLogin(now time.Duration, sub *protocol.LoginSubmit) (*protocol.ContentPage, error) {
	return t.Fallback.SubmitLogin(now, sub)
}

// SubmitPageRequest implements Transport: a single-request touch batch
// on the stream, or the Fallback after a downgrade.
func (t *Stream) SubmitPageRequest(now time.Duration, req *protocol.PageRequest) (*protocol.ContentPage, error) {
	conn, err := t.live()
	if err != nil {
		if t.downgraded() {
			return t.Fallback.SubmitPageRequest(now, req)
		}
		return nil, err
	}
	pages, err := conn.submitBatch(now, []*protocol.PageRequest{req})
	if err != nil {
		return nil, err
	}
	return pages[0], nil
}

// SubmitPageBatch sends several touch-authenticated requests in one
// frame and returns their pages in order. The caller pre-computes each
// request's chain nonce with PredictNonce.
func (t *Stream) SubmitPageBatch(now time.Duration, reqs []*protocol.PageRequest) ([]*protocol.ContentPage, error) {
	conn, err := t.live()
	if err != nil {
		return nil, err
	}
	return conn.submitBatch(now, reqs)
}

// SubmitResync implements Transport: a resync frame on the stream, or
// the Fallback after a downgrade.
func (t *Stream) SubmitResync(now time.Duration, req *protocol.ResyncRequest) (*protocol.ContentPage, error) {
	conn, err := t.live()
	if err != nil {
		if t.downgraded() {
			return t.Fallback.SubmitResync(now, req)
		}
		return nil, err
	}
	return conn.submitResync(now, req)
}

// Ping sends a heartbeat and waits for the server's echo, verifying it
// round-tripped verbatim. Heartbeat cadence belongs to the caller
// (virtual-time scheduled; see Device.ScheduleHeartbeats).
func (t *Stream) Ping(now time.Duration) error {
	conn, err := t.live()
	if err != nil {
		return err
	}
	return conn.ping(now)
}

// Close tears the live stream down (FrameBye, then close). The
// transport stays usable: the next submit redials.
func (t *Stream) Close() error {
	t.clearPending()
	t.mu.Lock()
	conn := t.conn
	t.conn = nil
	t.mu.Unlock()
	if conn == nil {
		return nil
	}
	conn.wmu.Lock()
	_ = protocol.WriteFrame(conn.rwc, protocol.FrameBye, nil)
	conn.wmu.Unlock()
	conn.fail(errors.New("device: stream closed"))
	return nil
}

func (t *Stream) downgraded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down
}

// streamClientConn is one live framed connection. A single reader
// goroutine owns all reads and dispatches responses to waiters in FIFO
// order — the server answers frames in the order they were sent, so
// the head waiter always matches the next response, and any sequence
// mismatch (a reordered, replayed, or misdirected frame) kills the
// connection rather than risk pairing a response with the wrong touch.
type streamClientConn struct {
	rwc      io.ReadWriteCloser
	br       *bufio.Reader        // buffers rwc; read-loop goroutine only
	chain    *protocol.NonceChain // nonce prediction; device goroutine only
	sess     *protocol.Session
	seed     []byte // the welcome's nonce-chain seed
	onPolicy func(window, minVerified int)

	wmu     sync.Mutex // serializes writes AND waiter-enqueue ordering
	nextSeq uint64     // frame sequence counter, under wmu

	mu      sync.Mutex
	err     error          // first fatal error; conn is dead once set
	waiters []*frameWaiter // FIFO of outstanding batches/resyncs
	hbs     []*hbWaiter    // FIFO of outstanding heartbeats
	served  uint64         // pages received = chain position of sess.LastNonce
	pushSeq uint64         // highest policy-push sequence accepted
}

// frameWaiter collects the responses to one request frame.
type frameWaiter struct {
	seq   uint64
	want  int
	pages []*protocol.ContentPage
	err   error
	done  chan struct{}
}

// hbWaiter waits for one heartbeat echo.
type hbWaiter struct {
	seq  uint64
	now  time.Duration
	done chan error
}

func (c *streamClientConn) alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil
}

func (c *streamClientConn) predictNonce(ahead int) protocol.Nonce {
	c.mu.Lock()
	served := c.served
	c.mu.Unlock()
	// c.chain is safe outside c.mu: only the device goroutine predicts
	// nonces, and it owns the chain's scratch state.
	return c.chain.At(served + uint64(ahead))
}

// fail marks the connection dead, closes it, and releases every waiter
// with a retryable network error — the caller cannot know how much of
// its request the server processed, which is exactly the ErrNetwork
// contract the retry/resync layer is built for.
func (c *streamClientConn) fail(cause error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = cause
	waiters := c.waiters
	hbs := c.hbs
	c.waiters, c.hbs = nil, nil
	c.mu.Unlock()
	c.rwc.Close()
	for _, w := range waiters {
		w.err = fmt.Errorf("%w: stream failed: %v", ErrNetwork, cause)
		close(w.done)
	}
	for _, h := range hbs {
		h.done <- fmt.Errorf("%w: stream failed: %v", ErrNetwork, cause)
	}
}

// send writes one frame and registers its waiter atomically with
// respect to other senders, so waiter FIFO order matches wire order.
func (c *streamClientConn) send(t protocol.FrameType, build func(seq uint64) ([]byte, error), w *frameWaiter, h *hbWaiter) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nextSeq++
	seq := c.nextSeq
	payload, err := build(seq)
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return fmt.Errorf("%w: stream failed: %v", ErrNetwork, err)
	}
	if w != nil {
		w.seq = seq
		c.waiters = append(c.waiters, w)
	}
	if h != nil {
		h.seq = seq
		c.hbs = append(c.hbs, h)
	}
	c.mu.Unlock()
	if err := protocol.WriteFrame(c.rwc, t, payload); err != nil {
		c.fail(fmt.Errorf("stream write: %w", err))
		return fmt.Errorf("%w: stream write: %v", ErrNetwork, err)
	}
	return nil
}

// submitBatch sends reqs as one touch-batch frame and waits for all
// their pages (or the error ack that ended the batch).
func (c *streamClientConn) submitBatch(now time.Duration, reqs []*protocol.PageRequest) ([]*protocol.ContentPage, error) {
	w := &frameWaiter{want: len(reqs), done: make(chan struct{})}
	err := c.send(protocol.FrameTouchBatch, func(seq uint64) ([]byte, error) {
		return protocol.EncodeTouchBatch(seq, now, reqs)
	}, w, nil)
	if err != nil {
		return nil, err
	}
	<-w.done
	if w.err != nil {
		return nil, w.err
	}
	return w.pages, nil
}

// submitResync sends a resync frame and waits for the recovered page.
func (c *streamClientConn) submitResync(now time.Duration, req *protocol.ResyncRequest) (*protocol.ContentPage, error) {
	w := &frameWaiter{want: 1, done: make(chan struct{})}
	err := c.send(protocol.FrameResync, func(seq uint64) ([]byte, error) {
		return protocol.EncodeResyncFrame(seq, req)
	}, w, nil)
	if err != nil {
		return nil, err
	}
	<-w.done
	if w.err != nil {
		return nil, w.err
	}
	return w.pages[0], nil
}

// ping sends a heartbeat and waits for its echo.
func (c *streamClientConn) ping(now time.Duration) error {
	h := &hbWaiter{now: now, done: make(chan error, 1)}
	err := c.send(protocol.FrameHeartbeat, func(seq uint64) ([]byte, error) {
		return protocol.EncodeHeartbeat(seq, now), nil
	}, nil, h)
	if err != nil {
		return err
	}
	return <-h.done
}

// readLoop is the connection's single reader: it dispatches pages and
// acks to the head request waiter, heartbeat echoes to the head
// heartbeat waiter, and policy pushes to the OnPolicy callback, until
// the connection dies.
func (c *streamClientConn) readLoop() {
	for {
		ft, payload, err := protocol.ReadFrame(c.br)
		if err != nil {
			c.fail(fmt.Errorf("stream read: %w", err))
			return
		}
		switch ft {
		case protocol.FramePage:
			seq, index, cp, err := protocol.DecodePageFrame(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if err := c.deliverPage(seq, index, cp); err != nil {
				c.fail(err)
				return
			}
		case protocol.FrameAck:
			seq, code, detail, err := protocol.DecodeAck(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if err := c.deliverAck(seq, code, detail); err != nil {
				c.fail(err)
				return
			}
		case protocol.FrameHeartbeat:
			seq, now, err := protocol.DecodeHeartbeat(payload)
			if err != nil {
				c.fail(err)
				return
			}
			if err := c.deliverHeartbeat(seq, now); err != nil {
				c.fail(err)
				return
			}
		case protocol.FramePolicyPush:
			if err := c.acceptPolicyPush(payload); err != nil {
				c.fail(err)
				return
			}
		default:
			c.fail(fmt.Errorf("device: unexpected %s frame on stream", ft))
			return
		}
	}
}

// deliverPage routes one page response to the head waiter, enforcing
// that it answers exactly the request the FIFO expects — any sequence
// or index skew means frames were reordered or replayed in transit,
// and the only safe reaction is to kill the connection before a page
// gets paired with the wrong touch.
func (c *streamClientConn) deliverPage(seq uint64, index int, cp *protocol.ContentPage) error {
	c.mu.Lock()
	if len(c.waiters) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("device: unsolicited page frame (seq %d)", seq)
	}
	w := c.waiters[0]
	if seq != w.seq || index != len(w.pages) {
		c.mu.Unlock()
		return fmt.Errorf("device: page frame seq %d/%d does not match expected %d/%d", seq, index, w.seq, len(w.pages))
	}
	w.pages = append(w.pages, cp)
	c.served++
	finished := len(w.pages) == w.want
	if finished {
		c.waiters = c.waiters[1:]
	}
	c.mu.Unlock()
	if finished {
		close(w.done)
	}
	return nil
}

// deliverAck completes the head waiter with a typed error (the server
// stops a batch at its first rejection).
func (c *streamClientConn) deliverAck(seq uint64, code, detail string) error {
	c.mu.Lock()
	if len(c.waiters) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("device: unsolicited ack frame (%s)", code)
	}
	w := c.waiters[0]
	if seq != w.seq {
		c.mu.Unlock()
		return fmt.Errorf("device: ack seq %d does not match expected %d", seq, w.seq)
	}
	c.waiters = c.waiters[1:]
	c.mu.Unlock()
	w.err = ackError(code, detail)
	close(w.done)
	return nil
}

// deliverHeartbeat completes the head heartbeat waiter, verifying the
// echo is verbatim.
func (c *streamClientConn) deliverHeartbeat(seq uint64, now time.Duration) error {
	c.mu.Lock()
	if len(c.hbs) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("device: unsolicited heartbeat echo (seq %d)", seq)
	}
	h := c.hbs[0]
	c.hbs = c.hbs[1:]
	c.mu.Unlock()
	if seq != h.seq || now != h.now {
		h.done <- fmt.Errorf("device: heartbeat echo %d/%v does not match %d/%v", seq, now, h.seq, h.now)
		return errors.New("device: heartbeat echo mismatch")
	}
	h.done <- nil
	return nil
}

// acceptPolicyPush verifies a server-initiated policy update (MAC plus
// monotonic sequence, so a tightened policy cannot be rolled back by
// replaying an older push) and hands it to the OnPolicy callback.
func (c *streamClientConn) acceptPolicyPush(payload []byte) error {
	msg, err := protocol.DecodeBinary(payload)
	if err != nil {
		return err
	}
	p, ok := msg.(*protocol.PolicyPush)
	if !ok {
		return fmt.Errorf("device: policy-push frame carries %T", msg)
	}
	c.mu.Lock()
	last := c.pushSeq
	c.mu.Unlock()
	if err := protocol.VerifyPolicyPush(c.sess, p, last); err != nil {
		return err
	}
	c.mu.Lock()
	if p.Seq > c.pushSeq {
		c.pushSeq = p.Seq
	}
	c.mu.Unlock()
	if c.onPolicy != nil {
		c.onPolicy(p.Window, p.MinVerified)
	}
	return nil
}
