package device

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"trust/internal/protocol"
)

// Error-path coverage for the transports: a device facing a broken or
// hostile server must fail cleanly, never panic or accept garbage.

func TestHTTPTransportServerDown(t *testing.T) {
	tr := &HTTP{BaseURL: "http://127.0.0.1:1", Client: http.DefaultClient}
	if _, err := tr.FetchRegistrationPage(0); err == nil {
		t.Fatal("unreachable server returned a page")
	}
	if _, err := tr.FetchLoginPage(0); err == nil {
		t.Fatal("unreachable server returned a login page")
	}
	if _, err := tr.SubmitLogin(0, &protocol.LoginSubmit{}); err == nil {
		t.Fatal("unreachable server accepted a login")
	}
	if _, err := tr.SubmitPageRequest(0, &protocol.PageRequest{}); err == nil {
		t.Fatal("unreachable server accepted a request")
	}
	if _, err := tr.SubmitRegistration(0, &protocol.RegistrationSubmit{}, "pw"); err == nil {
		t.Fatal("unreachable server accepted a registration")
	}
}

func TestHTTPTransportGarbageResponses(t *testing.T) {
	// A hostile server returning wrong-type or malformed bodies.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{broken`))
	}))
	defer garbage.Close()
	tr := &HTTP{BaseURL: garbage.URL, Client: garbage.Client()}
	if _, err := tr.FetchRegistrationPage(0); err == nil {
		t.Fatal("broken JSON accepted")
	}

	wrongBinary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A valid binary message of the WRONG type for every endpoint.
		data, _ := protocol.EncodeBinary(&protocol.PageRequest{Domain: "d"})
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	}))
	defer wrongBinary.Close()
	tb := &HTTP{BaseURL: wrongBinary.URL, Client: wrongBinary.Client(), Binary: true}
	if _, err := tb.FetchRegistrationPage(0); err == nil {
		t.Fatal("wrong-type binary response accepted")
	}
	if _, err := tb.FetchLoginPage(0); err == nil {
		t.Fatal("wrong-type binary login page accepted")
	}

	binGarbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write([]byte{0xde, 0xad})
	}))
	defer binGarbage.Close()
	tg := &HTTP{BaseURL: binGarbage.URL, Client: binGarbage.Client(), Binary: true}
	if _, err := tg.FetchLoginPage(0); err == nil {
		t.Fatal("binary garbage accepted")
	}
}

func TestAdoptSessionValidation(t *testing.T) {
	fx := newFixture(t, nil)
	if err := fx.dev.AdoptSession(nil, nil); err == nil {
		t.Fatal("nil session adopted")
	}
	if err := fx.dev.AdoptSession(&protocol.Session{}, &protocol.ContentPage{}); err == nil {
		t.Fatal("page-less content adopted")
	}
}

func TestInjectRequestWithoutSession(t *testing.T) {
	fx := newFixture(t, nil)
	if err := fx.dev.InjectRequest(0, "x"); err == nil {
		t.Fatal("injection without session succeeded")
	}
}
