package device

import (
	"time"

	"trust/internal/protocol"
	"trust/internal/webserver"
)

// InMemory is the direct-call transport used by simulations: zero
// network cost, same message flow.
type InMemory struct {
	Server *webserver.Server
	// Interceptor, when set, sees and may replace every outbound
	// message — the man-in-the-middle position for the attack harness.
	Interceptor *Interceptor
}

// Interceptor is a network-level adversary (paper assumption (iii):
// "the Internet communication ... is untrusted").
type Interceptor struct {
	// OnLoginSubmit may return a replacement submission (or the
	// original) — used for replay and tamper attacks.
	OnLoginSubmit func(sub *protocol.LoginSubmit) *protocol.LoginSubmit
	// OnPageRequest likewise.
	OnPageRequest func(req *protocol.PageRequest) *protocol.PageRequest
	// CapturedLogin and CapturedRequests record traffic for later
	// replay.
	CapturedLogin    *protocol.LoginSubmit
	CapturedRequests []*protocol.PageRequest
}

var _ Transport = (*InMemory)(nil)

// FetchRegistrationPage implements Transport.
func (t *InMemory) FetchRegistrationPage(now time.Duration) (*protocol.RegistrationPage, error) {
	return t.Server.ServeRegistrationPage(now), nil
}

// SubmitRegistration implements Transport.
func (t *InMemory) SubmitRegistration(now time.Duration, sub *protocol.RegistrationSubmit, recovery string) (protocol.RegistrationResult, error) {
	return t.Server.HandleRegistration(now, sub, recovery), nil
}

// FetchLoginPage implements Transport.
func (t *InMemory) FetchLoginPage(now time.Duration) (*protocol.LoginPage, error) {
	return t.Server.ServeLoginPage(now), nil
}

// SubmitLogin implements Transport.
func (t *InMemory) SubmitLogin(now time.Duration, sub *protocol.LoginSubmit) (*protocol.ContentPage, error) {
	if t.Interceptor != nil {
		t.Interceptor.CapturedLogin = cloneLoginSubmit(sub)
		if t.Interceptor.OnLoginSubmit != nil {
			sub = t.Interceptor.OnLoginSubmit(sub)
		}
	}
	return t.Server.HandleLogin(now, sub)
}

// SubmitResume implements Transport.
func (t *InMemory) SubmitResume(now time.Duration, sub *protocol.ResumeSubmit) (*protocol.ContentPage, error) {
	return t.Server.HandleResume(now, sub)
}

// SubmitPageRequest implements Transport.
func (t *InMemory) SubmitPageRequest(now time.Duration, req *protocol.PageRequest) (*protocol.ContentPage, error) {
	if t.Interceptor != nil {
		t.Interceptor.CapturedRequests = append(t.Interceptor.CapturedRequests, clonePageRequest(req))
		if t.Interceptor.OnPageRequest != nil {
			req = t.Interceptor.OnPageRequest(req)
		}
	}
	return t.Server.HandlePageRequest(now, req)
}

// SubmitResync implements Transport.
func (t *InMemory) SubmitResync(now time.Duration, req *protocol.ResyncRequest) (*protocol.ContentPage, error) {
	return t.Server.HandleResync(now, req)
}

// cloneLoginSubmit deep-copies a captured submission. A shallow struct
// copy would alias the live message's byte slices, so a tamper hook (or
// the client reusing a buffer) could silently rewrite the "captured"
// replay traffic after the fact.
func cloneLoginSubmit(sub *protocol.LoginSubmit) *protocol.LoginSubmit {
	cp := *sub
	cp.SessionKeyCT = append([]byte(nil), sub.SessionKeyCT...)
	cp.Signature = append([]byte(nil), sub.Signature...)
	cp.MAC = append([]byte(nil), sub.MAC...)
	return &cp
}

// clonePageRequest deep-copies a captured page request (see
// cloneLoginSubmit for why the slices must not be aliased).
func clonePageRequest(req *protocol.PageRequest) *protocol.PageRequest {
	cp := *req
	cp.MAC = append([]byte(nil), req.MAC...)
	return &cp
}
