package device

import (
	"runtime"
	"testing"
	"time"

	"trust/internal/protocol"
	"trust/internal/sim"
)

// countingTransport wraps a Transport and counts the login-path calls,
// so tests can assert which path (ticket resume vs full cold login) a
// flow actually took.
type countingTransport struct {
	Transport
	logins  int
	resumes int
}

func (t *countingTransport) SubmitLogin(now time.Duration, sub *protocol.LoginSubmit) (*protocol.ContentPage, error) {
	t.logins++
	return t.Transport.SubmitLogin(now, sub)
}

func (t *countingTransport) SubmitResume(now time.Duration, sub *protocol.ResumeSubmit) (*protocol.ContentPage, error) {
	t.resumes++
	return t.Transport.SubmitResume(now, sub)
}

func (t *countingTransport) BindSession(sess *protocol.Session) {
	if b, ok := t.Transport.(sessionBinder); ok {
		b.BindSession(sess)
	}
}

// countFixture builds the standard in-memory fixture with the counting
// wrapper interposed.
func countFixture(t *testing.T) (*fixture, *countingTransport) {
	t.Helper()
	fx := newFixture(t, nil)
	ct := &countingTransport{Transport: fx.dev.transport}
	fx.dev.transport = ct
	return fx, ct
}

func TestLoginResumeSkipsColdPath(t *testing.T) {
	fx, ct := countFixture(t)
	fx.registerAndLogin(t)
	if !fx.dev.HasTicket() {
		t.Fatal("no ticket cached after full login")
	}
	old := fx.dev.Session().ID

	fx.touchOwner(t)
	if err := fx.dev.LoginResume(fx.now, fx.server.Certificate(), "acct"); err != nil {
		t.Fatalf("resume login: %v", err)
	}
	if ct.resumes != 1 || ct.logins != 1 {
		t.Fatalf("resumes=%d logins=%d, want 1 resume and only the initial full login", ct.resumes, ct.logins)
	}
	if fx.dev.Session().ID == old {
		t.Fatal("resume did not establish a fresh session")
	}
	if !fx.dev.HasTicket() {
		t.Fatal("resume response did not refresh the ticket cache")
	}

	// The resumed session browses normally and audits clean.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "view-statement"); err != nil {
		t.Fatalf("browse on resumed session: %v", err)
	}
	if report := fx.server.RunAudit(); report.Tampered != 0 {
		t.Fatalf("resumed session flagged by audit: %d of %d", report.Tampered, report.Checked)
	}
}

func TestLoginResumeChainsAcrossSessions(t *testing.T) {
	fx, ct := countFixture(t)
	fx.registerAndLogin(t)
	// Each resume's response carries a fresh ticket sealing the NEW key,
	// so resumes chain indefinitely within the epoch window.
	for i := 0; i < 3; i++ {
		fx.touchOwner(t)
		if err := fx.dev.LoginResume(fx.now, fx.server.Certificate(), "acct"); err != nil {
			t.Fatalf("resume %d: %v", i, err)
		}
	}
	if ct.resumes != 3 || ct.logins != 1 {
		t.Fatalf("resumes=%d logins=%d, want 3 chained resumes over one cold login", ct.resumes, ct.logins)
	}
}

func TestLoginResumeWithoutTicketRunsFullLogin(t *testing.T) {
	fx, ct := countFixture(t)
	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "acct", "recovery-pw"); err != nil {
		t.Fatal(err)
	}
	fx.touchOwner(t)
	if err := fx.dev.LoginResume(fx.now, fx.server.Certificate(), "acct"); err != nil {
		t.Fatalf("ticketless resume-first login: %v", err)
	}
	if ct.resumes != 0 || ct.logins != 1 {
		t.Fatalf("resumes=%d logins=%d, want the cold path straight away", ct.resumes, ct.logins)
	}
	if !fx.dev.HasTicket() {
		t.Fatal("cold login did not prime the ticket cache")
	}
}

func TestLoginResumeEpochExpiryFallsBack(t *testing.T) {
	fx, ct := countFixture(t)
	fx.registerAndLogin(t)

	// Let the ticket's epoch window lapse (period 5m, window 1): the
	// server rejects the ticket and the device must converge through the
	// cold path without surfacing an error.
	fx.now += 15 * time.Minute
	fx.touchOwner(t)
	if err := fx.dev.LoginResume(fx.now, fx.server.Certificate(), "acct"); err != nil {
		t.Fatalf("resume-first login after epoch expiry: %v", err)
	}
	if ct.resumes != 1 || ct.logins != 2 {
		t.Fatalf("resumes=%d logins=%d, want 1 rejected resume then a full login", ct.resumes, ct.logins)
	}
	if !fx.dev.HasTicket() {
		t.Fatal("fallback login did not re-prime the ticket cache")
	}
	// The re-primed ticket is live: the next resume takes the fast path.
	fx.touchOwner(t)
	if err := fx.dev.LoginResume(fx.now, fx.server.Certificate(), "acct"); err != nil {
		t.Fatalf("resume after fallback: %v", err)
	}
	if ct.resumes != 2 || ct.logins != 2 {
		t.Fatalf("resumes=%d logins=%d after re-resume", ct.resumes, ct.logins)
	}
}

func TestLoginResumeResilientUnderFaults(t *testing.T) {
	fx, ct := countFixture(t)
	fx.registerAndLogin(t)
	fx.dev.SetRetryPolicy(RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond}, sim.NewRNG(5))

	// Lossy network: drops hit the resume and the fallback alike. The
	// resilient flow must still converge to a session; a resume response
	// lost in transit burns the ticket server-side, which the device
	// handles by dropping its copy and going cold.
	ft := NewFaultyTransport(ct, FaultProfile{DropRate: 0.4}, sim.NewRNG(42))
	fx.dev.transport = ft

	fx.touchOwner(t)
	now, err := fx.dev.LoginResumeResilient(fx.now, fx.server.Certificate(), "acct")
	if err != nil {
		t.Fatalf("resilient resume login under 40%% loss: %v", err)
	}
	fx.now = now
	if fx.dev.Session() == nil {
		t.Fatal("no session after resilient login")
	}
	if ct.resumes+ct.logins < 2 {
		t.Fatalf("resumes=%d logins=%d, expected the faulty run to exercise both paths", ct.resumes, ct.logins)
	}
	// Browsing works on whatever session the lossy run established.
	fx.touchOwner(t)
	if _, err := fx.dev.BrowseResilient(fx.now, "view-statement"); err != nil {
		t.Fatalf("browse after lossy login: %v", err)
	}
}

func TestStreamResumeAdoptsConnection(t *testing.T) {
	fx, tr := newStreamFixture(t, nil)
	fx.registerAndLogin(t)
	if !tr.Streaming() {
		t.Fatal("not streaming after login")
	}

	// Resume-first re-login over the stream transport: the resume frame
	// handshake replaces the hello, and the connection it opened is
	// adopted for the new session instead of being redialed.
	fx.touchOwner(t)
	if err := fx.dev.LoginResume(fx.now, fx.server.Certificate(), "acct"); err != nil {
		t.Fatalf("stream resume login: %v", err)
	}
	if !tr.Streaming() {
		t.Fatal("stream not live after resume")
	}
	if st := tr.Stats(); st.Dials != 2 || st.Downgrades != 0 {
		t.Fatalf("stream stats %+v, want exactly one resume dial beyond the login dial", st)
	}
	// The replaced login stream unregisters when its server read loop
	// observes the closed pipe — asynchronous, so yield until it lands.
	for i := 0; i < 100000 && fx.server.StreamCount() != 1; i++ {
		runtime.Gosched()
	}
	if n := fx.server.StreamCount(); n != 1 {
		t.Fatalf("server tracks %d streams, want 1 (login stream replaced)", n)
	}

	// The adopted connection's nonce chain lines up for streamed
	// browsing from position 0.
	accepted := fx.server.AcceptedRequests()
	for _, action := range []string{"view-statement", "home"} {
		fx.touchOwner(t)
		if err := fx.dev.Browse(fx.now, action); err != nil {
			t.Fatalf("streamed browse %s after resume: %v", action, err)
		}
	}
	if got := fx.server.AcceptedRequests() - accepted; got != 2 {
		t.Fatalf("server accepted %d streamed requests after resume, want 2", got)
	}
	if report := fx.server.RunAudit(); report.Tampered != 0 {
		t.Fatalf("stream resume session flagged by audit: %d of %d", report.Tampered, report.Checked)
	}
}

func TestStreamResumeEpochExpiryFallsBackToHello(t *testing.T) {
	fx, tr := newStreamFixture(t, nil)
	fx.registerAndLogin(t)

	fx.now += 15 * time.Minute
	fx.touchOwner(t)
	// The streamed resume is rejected by ack; the device falls back to
	// the full login, which re-establishes the stream via hello.
	if err := fx.dev.LoginResume(fx.now, fx.server.Certificate(), "acct"); err != nil {
		t.Fatalf("stream resume-first login after expiry: %v", err)
	}
	if !tr.Streaming() {
		t.Fatal("stream not re-established after fallback")
	}
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "home"); err != nil {
		t.Fatalf("browse after stream fallback: %v", err)
	}
}
