package device

import (
	"errors"
	"fmt"
	"time"

	"trust/internal/protocol"
	"trust/internal/sim"
)

// ErrNetwork is the retryable fault class: the message (or its
// response) was lost or mangled in transit and the client cannot know
// whether the server processed it. Both the HTTP transport (socket
// failures) and FaultyTransport (injected loss) wrap it; the retry
// layer treats exactly this class as worth retrying.
var ErrNetwork = errors.New("device: network fault")

// FaultProfile configures a FaultyTransport. The zero value injects
// nothing (the wrapper is transparent). Rates are probabilities in
// [0, 1].
type FaultProfile struct {
	// DropRate is the per-direction loss probability: each request and
	// each response is independently lost with this probability. A lost
	// request never reaches the server; a lost response means the server
	// DID process the message — the asymmetry the retry layer's nonce
	// resync exists for.
	DropRate float64
	// DuplicateRate is the probability a delivered request is delivered
	// a second time (network-level duplication). The duplicate's
	// response is discarded; it exists to exercise server idempotency.
	DuplicateRate float64
	// CorruptRate is the probability a request has one MAC/signature
	// byte flipped before delivery, provoking a terminal typed
	// rejection.
	CorruptRate float64
	// DelayMean, when nonzero, adds exponentially distributed extra
	// latency (in virtual time) to every call's forwarded timestamp.
	DelayMean time.Duration
}

// FaultStats counts what a FaultyTransport injected.
type FaultStats struct {
	Calls            int
	DroppedRequests  int
	DroppedResponses int
	Duplicated       int
	Corrupted        int
	TotalDelay       time.Duration
}

// FaultyTransport wraps any Transport with deterministic, seeded fault
// injection: message loss, duplication, corruption, and delay, all
// drawn from a sim.RNG in virtual time. Same seed + same call sequence
// → byte-identical fault schedule, so chaos experiments are exactly
// reproducible.
type FaultyTransport struct {
	Inner Transport
	// Profile may be swapped at any point between calls (load
	// generators build the fleet clean, then turn faults on).
	Profile FaultProfile
	Stats   FaultStats

	rng *sim.RNG
}

var _ Transport = (*FaultyTransport)(nil)

// NewFaultyTransport wraps inner with the given profile, drawing all
// fault decisions from rng.
func NewFaultyTransport(inner Transport, profile FaultProfile, rng *sim.RNG) *FaultyTransport {
	return &FaultyTransport{Inner: inner, Profile: profile, rng: rng}
}

// faultyRound runs one call through the fault schedule: delay draw,
// request-drop draw, delivery (plus possible duplicate delivery), then
// response-drop draw. Draws happen in a fixed order so the schedule
// depends only on the RNG stream and the profile.
func faultyRound[R any](t *FaultyTransport, op string, now time.Duration, do func(time.Duration) (R, error)) (R, error) {
	var zero R
	t.Stats.Calls++
	if m := t.Profile.DelayMean; m > 0 {
		d := time.Duration(t.rng.Exp(float64(m)))
		t.Stats.TotalDelay += d
		now += d
	}
	if p := t.Profile.DropRate; p > 0 && t.rng.Bool(p) {
		t.Stats.DroppedRequests++
		return zero, fmt.Errorf("%w: %s request dropped", ErrNetwork, op)
	}
	resp, err := do(now)
	if p := t.Profile.DuplicateRate; p > 0 && t.rng.Bool(p) {
		// Second delivery of the same message. Its result is discarded —
		// the point is that the server must reject or tolerate it
		// without double-applying (idempotency under at-least-once
		// delivery).
		t.Stats.Duplicated++
		_, _ = do(now)
	}
	if p := t.Profile.DropRate; p > 0 && err == nil && t.rng.Bool(p) {
		t.Stats.DroppedResponses++
		return zero, fmt.Errorf("%w: %s response dropped", ErrNetwork, op)
	}
	return resp, err
}

// corrupt reports whether this call's request should be corrupted, and
// counts it.
func (t *FaultyTransport) corrupt() bool {
	if p := t.Profile.CorruptRate; p > 0 && t.rng.Bool(p) {
		t.Stats.Corrupted++
		return true
	}
	return false
}

// flipByte flips one bit of a random byte of b (no-op on empty b).
func (t *FaultyTransport) flipByte(b []byte) {
	if len(b) == 0 {
		return
	}
	b[t.rng.Intn(len(b))] ^= 1 << uint(t.rng.Intn(8))
}

// BindSession forwards the session binding to a wrapped streamed
// transport, so fault injection composes with session-bound inners.
func (t *FaultyTransport) BindSession(sess *protocol.Session) {
	if b, ok := t.Inner.(sessionBinder); ok {
		b.BindSession(sess)
	}
}

// FetchRegistrationPage implements Transport.
func (t *FaultyTransport) FetchRegistrationPage(now time.Duration) (*protocol.RegistrationPage, error) {
	return faultyRound(t, "registration page", now, t.Inner.FetchRegistrationPage)
}

// SubmitRegistration implements Transport.
func (t *FaultyTransport) SubmitRegistration(now time.Duration, sub *protocol.RegistrationSubmit, recovery string) (protocol.RegistrationResult, error) {
	if t.corrupt() {
		cp := *sub
		cp.Signature = append([]byte(nil), sub.Signature...)
		t.flipByte(cp.Signature)
		sub = &cp
	}
	return faultyRound(t, "registration", now, func(fnow time.Duration) (protocol.RegistrationResult, error) {
		return t.Inner.SubmitRegistration(fnow, sub, recovery)
	})
}

// FetchLoginPage implements Transport.
func (t *FaultyTransport) FetchLoginPage(now time.Duration) (*protocol.LoginPage, error) {
	return faultyRound(t, "login page", now, t.Inner.FetchLoginPage)
}

// SubmitLogin implements Transport.
func (t *FaultyTransport) SubmitLogin(now time.Duration, sub *protocol.LoginSubmit) (*protocol.ContentPage, error) {
	if t.corrupt() {
		sub = cloneLoginSubmit(sub)
		t.flipByte(sub.MAC)
	}
	return faultyRound(t, "login", now, func(fnow time.Duration) (*protocol.ContentPage, error) {
		return t.Inner.SubmitLogin(fnow, sub)
	})
}

// SubmitResume implements Transport.
func (t *FaultyTransport) SubmitResume(now time.Duration, sub *protocol.ResumeSubmit) (*protocol.ContentPage, error) {
	if t.corrupt() {
		cp := *sub
		cp.MAC = append([]byte(nil), sub.MAC...)
		t.flipByte(cp.MAC)
		sub = &cp
	}
	return faultyRound(t, "resume", now, func(fnow time.Duration) (*protocol.ContentPage, error) {
		return t.Inner.SubmitResume(fnow, sub)
	})
}

// SubmitPageRequest implements Transport.
func (t *FaultyTransport) SubmitPageRequest(now time.Duration, req *protocol.PageRequest) (*protocol.ContentPage, error) {
	if t.corrupt() {
		req = clonePageRequest(req)
		t.flipByte(req.MAC)
	}
	return faultyRound(t, "page request", now, func(fnow time.Duration) (*protocol.ContentPage, error) {
		return t.Inner.SubmitPageRequest(fnow, req)
	})
}

// SubmitResync implements Transport.
func (t *FaultyTransport) SubmitResync(now time.Duration, req *protocol.ResyncRequest) (*protocol.ContentPage, error) {
	if t.corrupt() {
		cp := *req
		cp.MAC = append([]byte(nil), req.MAC...)
		t.flipByte(cp.MAC)
		req = &cp
	}
	return faultyRound(t, "resync", now, func(fnow time.Duration) (*protocol.ContentPage, error) {
		return t.Inner.SubmitResync(fnow, req)
	})
}
