package device

import "sync/atomic"

// deviceTel counts the device's recovery machinery firing: every
// counter here is an event the happy path never produces, so a capture
// of a healthy run is all zeros and a chaos run's counters localize
// which fallback absorbed the faults. Counters are atomic because the
// heartbeat scheduler can drive transport recovery from its own
// goroutine while the interaction loop browses.
type deviceTel struct {
	// retries counts backoff-then-redeliver rounds across the
	// *Resilient flows (one per wait, not per attempt).
	retries atomic.Int64
	// resyncs counts nonce-resynchronization round trips (Resync).
	resyncs atomic.Int64
	// resumeFallbacks counts resume-first logins that fell back to the
	// full cold path with a ticket in hand (a spent, rejected, or
	// fate-unknown ticket — not the routine no-ticket case).
	resumeFallbacks atomic.Int64
	// degradedEnters counts entries into local-cache degraded mode.
	degradedEnters atomic.Int64
}

// streamStatser is the transport facet exposing stream connection
// stats; only the streamed transport implements it.
type streamStatser interface{ Stats() StreamStats }

// MetricsSchema returns the device's telemetry column names, in the
// exact order AppendMetrics emits values. The last three columns are
// zero when the transport is not streamed.
func (d *Device) MetricsSchema() []string {
	return []string{
		"dev_retries", "dev_resyncs", "dev_resume_fallbacks", "dev_degraded_enters",
		"dev_stream_dials", "dev_stream_redials", "dev_stream_downgrades",
	}
}

// AppendMetrics appends the current telemetry values to vals in
// MetricsSchema order and returns the extended slice.
func (d *Device) AppendMetrics(vals []int64) []int64 {
	vals = append(vals,
		d.tel.retries.Load(),
		d.tel.resyncs.Load(),
		d.tel.resumeFallbacks.Load(),
		d.tel.degradedEnters.Load(),
	)
	var st StreamStats
	if ss, ok := d.transport.(streamStatser); ok {
		st = ss.Stats()
	}
	return append(vals, int64(st.Dials), int64(st.Redials), int64(st.Downgrades))
}
