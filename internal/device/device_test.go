package device

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trust/internal/fingerprint"
	"trust/internal/flock"
	"trust/internal/frame"
	"trust/internal/geom"
	"trust/internal/pki"
	"trust/internal/placement"
	"trust/internal/protocol"
	"trust/internal/touch"
	"trust/internal/webserver"
)

type fixture struct {
	ca     *pki.CA
	server *webserver.Server
	dev    *Device
	finger *fingerprint.Finger
	now    time.Duration
}

func newFixture(t *testing.T, mal *Malware) *fixture {
	t.Helper()
	ca, err := pki.NewCA("trust-root", pki.NewDeterministicRand(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := webserver.New("www.xyz.com", ca, 7)
	if err != nil {
		t.Fatal(err)
	}
	pl := placement.Placement{Sensors: []geom.Rect{geom.RectWH(180, 660, 120, 120)}}
	mod, err := flock.New(flock.DefaultConfig(pl), ca, "device-1", 99)
	if err != nil {
		t.Fatal(err)
	}
	f := fingerprint.Synthesize(4242, fingerprint.Loop)
	if err := mod.Enroll(fingerprint.NewTemplate(f)); err != nil {
		t.Fatal(err)
	}
	dev := New("phone", mod, &InMemory{Server: srv})
	dev.Malware = mal
	return &fixture{ca: ca, server: srv, dev: dev, finger: f}
}

func (fx *fixture) touchOwner(t *testing.T) {
	t.Helper()
	for i := 0; i < 30; i++ {
		ev := touch.Event{At: fx.now, Pos: geom.Point{X: 240, Y: 720}, Pressure: 0.7, RadiusMM: 4.2, SpeedMMS: 1}
		out := fx.dev.Touch(ev, fx.finger)
		fx.now += 400 * time.Millisecond
		if out.Kind == flock.Matched {
			return
		}
	}
	t.Fatal("owner never verified")
}

func (fx *fixture) registerAndLogin(t *testing.T) {
	t.Helper()
	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "acct", "recovery-pw"); err != nil {
		t.Fatalf("register: %v", err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Login(fx.now, fx.server.Certificate(), "acct"); err != nil {
		t.Fatalf("login: %v", err)
	}
}

func TestCleanDeviceEndToEnd(t *testing.T) {
	fx := newFixture(t, nil)
	fx.registerAndLogin(t)
	if fx.dev.Session() == nil {
		t.Fatal("no session after login")
	}
	for _, action := range []string{"view-statement", "home"} {
		fx.touchOwner(t)
		if err := fx.dev.Browse(fx.now, action); err != nil {
			t.Fatalf("browse %s: %v", action, err)
		}
	}
	report := fx.server.RunAudit()
	if report.Tampered != 0 {
		t.Fatalf("clean device flagged by audit: %d of %d", report.Tampered, report.Checked)
	}
}

func TestMalwareFrameTamperCaughtByAudit(t *testing.T) {
	mal := &Malware{
		TamperFrame: func(p *frame.Page) *frame.Page {
			p.Body = "You won a prize! Touch to claim."
			return p
		},
	}
	fx := newFixture(t, mal)
	fx.registerAndLogin(t)
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "view-statement"); err != nil {
		t.Fatalf("browse under tamper: %v", err)
	}
	report := fx.server.RunAudit()
	if report.Tampered == 0 {
		t.Fatal("audit missed tampered frames")
	}
}

func TestMalwareRequestMutationRejectedOnline(t *testing.T) {
	mal := &Malware{
		MutateRequest: func(req *protocol.PageRequest) {
			req.Action = "confirm-transfer"
		},
	}
	fx := newFixture(t, mal)
	fx.registerAndLogin(t)
	fx.touchOwner(t)
	err := fx.dev.Browse(fx.now, "view-statement")
	if err == nil {
		t.Fatal("MAC-broken request accepted")
	}
	if !strings.Contains(err.Error(), "MAC") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

func TestMalwareInjectionWithoutTouchFails(t *testing.T) {
	fx := newFixture(t, nil)
	fx.registerAndLogin(t)
	// Let the freshness window lapse, then inject.
	fx.now += time.Hour
	err := fx.dev.InjectRequest(fx.now, "confirm-transfer")
	if err != protocol.ErrNoFreshTouch {
		t.Fatalf("injection error = %v, want ErrNoFreshTouch", err)
	}
}

func TestInterceptorReplayRejected(t *testing.T) {
	fx := newFixture(t, nil)
	inter := &Interceptor{}
	fx.dev.transport = &InMemory{Server: fx.server, Interceptor: inter}
	fx.registerAndLogin(t)
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "view-statement"); err != nil {
		t.Fatal(err)
	}
	if len(inter.CapturedRequests) == 0 {
		t.Fatal("interceptor captured nothing")
	}
	// Replay the captured request directly at the server.
	replayed := inter.CapturedRequests[len(inter.CapturedRequests)-1]
	if _, err := fx.server.HandlePageRequest(fx.now, replayed); err == nil {
		t.Fatal("replayed request accepted")
	}
}

func TestHTTPTransportEndToEnd(t *testing.T) {
	fx := newFixture(t, nil)
	ts := httptest.NewServer(fx.server.Handler())
	defer ts.Close()

	fx.dev.transport = &HTTP{BaseURL: ts.URL, Client: ts.Client()}

	cert, err := webserver.FetchCertificate(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(fx.ca.PublicKey(), pki.RoleServer); err != nil {
		t.Fatalf("fetched certificate invalid: %v", err)
	}

	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "http-acct", "pw"); err != nil {
		t.Fatalf("HTTP register: %v", err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Login(fx.now, cert, "http-acct"); err != nil {
		t.Fatalf("HTTP login: %v", err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "view-statement"); err != nil {
		t.Fatalf("HTTP browse: %v", err)
	}
	report := fx.server.RunAudit()
	if report.Tampered != 0 {
		t.Fatalf("HTTP honest session flagged: %d of %d", report.Tampered, report.Checked)
	}
}

func TestZoomedBrowsingPassesAudit(t *testing.T) {
	fx := newFixture(t, nil)
	fx.registerAndLogin(t)

	// The user zooms in and scrolls; the view snaps to the standard
	// lattice, the repeater hashes the zoomed frame, and the audit
	// still verifies every entry.
	fx.dev.SetView(frame.View{Zoom: 1.4, ScrollY: 230}) // snaps to 1.5 / 200
	if v := fx.dev.View(); v.Zoom != 1.5 || v.ScrollY != 200 {
		t.Fatalf("view did not snap: %+v", v)
	}
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "view-statement"); err != nil {
		t.Fatalf("zoomed browse: %v", err)
	}
	fx.dev.SetView(frame.View{Zoom: 1, ScrollY: -50})
	if v := fx.dev.View(); v.ScrollY != 0 {
		t.Fatalf("negative scroll not clamped: %+v", v)
	}
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "home"); err != nil {
		t.Fatalf("reset-view browse: %v", err)
	}
	report := fx.server.RunAudit()
	if report.Tampered != 0 {
		t.Fatalf("zoomed honest session flagged: %d of %d", report.Tampered, report.Checked)
	}
}

func TestHTTPBinaryTransportEndToEnd(t *testing.T) {
	fx := newFixture(t, nil)
	ts := httptest.NewServer(fx.server.Handler())
	defer ts.Close()

	// Same flow as the JSON transport, but over the compact binary
	// codec — signatures and MACs must verify identically.
	fx.dev.transport = &HTTP{BaseURL: ts.URL, Client: ts.Client(), Binary: true}
	cert, err := webserver.FetchCertificate(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "bin-acct", "pw"); err != nil {
		t.Fatalf("binary register: %v", err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Login(fx.now, cert, "bin-acct"); err != nil {
		t.Fatalf("binary login: %v", err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "view-statement"); err != nil {
		t.Fatalf("binary browse: %v", err)
	}
	if report := fx.server.RunAudit(); report.Tampered != 0 {
		t.Fatalf("binary-transport honest session flagged: %d of %d", report.Tampered, report.Checked)
	}
}

func TestBrowseWithoutSession(t *testing.T) {
	fx := newFixture(t, nil)
	if err := fx.dev.Browse(0, "home"); err == nil {
		t.Fatal("browse without session succeeded")
	}
}

func TestLoginPinsServerKey(t *testing.T) {
	fx := newFixture(t, nil)
	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "acct", "pw"); err != nil {
		t.Fatal(err)
	}
	// Present a different (but CA-signed) server certificate at login:
	// pinning must reject it.
	otherSrv, err := webserver.New("www.xyz.com", fx.ca, 1234)
	if err != nil {
		t.Fatal(err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Login(fx.now, otherSrv.Certificate(), "acct"); err == nil {
		t.Fatal("key-swapped certificate accepted at login")
	}
}
