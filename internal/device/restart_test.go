package device

import (
	"strings"
	"testing"

	"trust/internal/fingerprint"
	"trust/internal/flock"
	"trust/internal/geom"
	"trust/internal/pki"
	"trust/internal/placement"
	"trust/internal/store"
	"trust/internal/webserver"
)

// durableFixture is newFixture over a WAL-backed server so the account
// store survives a restart while every in-memory table (sessions,
// resumption-ticket nonces, page registry) is lost with the process.
func durableFixture(t *testing.T, fsys store.FS) *fixture {
	t.Helper()
	ca, err := pki.NewCA("trust-root", pki.NewDeterministicRand(1))
	if err != nil {
		t.Fatal(err)
	}
	wal, err := store.OpenWAL(fsys, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := webserver.NewDurable("www.xyz.com", ca, 7, wal)
	if err != nil {
		t.Fatal(err)
	}
	pl := placement.Placement{Sensors: []geom.Rect{geom.RectWH(180, 660, 120, 120)}}
	mod, err := flock.New(flock.DefaultConfig(pl), ca, "device-1", 99)
	if err != nil {
		t.Fatal(err)
	}
	f := fingerprint.Synthesize(4242, fingerprint.Loop)
	if err := mod.Enroll(fingerprint.NewTemplate(f)); err != nil {
		t.Fatal(err)
	}
	dev := New("phone", mod, &InMemory{Server: srv})
	return &fixture{ca: ca, server: srv, dev: dev, finger: f}
}

// TestServerRestartResumeFallsBackToFullLogin: a server restart strands
// every in-memory session and resumption ticket but keeps the durable
// accounts. The device's resume-first login must shed its now-useless
// ticket, converge through the full cold login against the recovered
// account, and never create a duplicate enrollment.
func TestServerRestartResumeFallsBackToFullLogin(t *testing.T) {
	fsys := store.NewMemFS()
	fx := durableFixture(t, fsys)
	ct := &countingTransport{Transport: fx.dev.transport}
	fx.dev.transport = ct

	fx.registerAndLogin(t)
	if !fx.dev.HasTicket() {
		t.Fatal("no ticket cached after full login")
	}

	// Hard restart: drop the server (and with it sessions, tickets,
	// nonces), reopen the same log, bring up a fresh instance. Close
	// flushes and closes the WAL through the backend.
	if err := fx.server.Close(); err != nil {
		t.Fatalf("close durable server: %v", err)
	}
	wal2, err := store.OpenWAL(fsys, store.WALOptions{})
	if err != nil {
		t.Fatalf("reopen WAL: %v", err)
	}
	srv2, err := webserver.NewDurable("www.xyz.com", fx.ca, 7, wal2)
	if err != nil {
		t.Fatalf("restart server: %v", err)
	}
	defer srv2.Close()
	fx.server = srv2
	ct.Transport = &InMemory{Server: srv2}

	// Resume-first login: the cached ticket is stranded (the restarted
	// server has never issued it), so the attempt must fall back to the
	// full login against the recovered account — no error surfaces.
	fx.touchOwner(t)
	now, err := fx.dev.LoginResumeResilient(fx.now, srv2.Certificate(), "acct")
	if err != nil {
		t.Fatalf("resume-first login after restart: %v", err)
	}
	fx.now = now
	if fx.dev.Session() == nil {
		t.Fatal("no session after post-restart login")
	}
	if ct.logins != 2 {
		t.Fatalf("logins=%d, want the pre-restart cold login plus exactly one fallback", ct.logins)
	}
	if !fx.dev.HasTicket() {
		t.Fatal("fallback login did not re-prime the ticket cache")
	}

	// The re-primed ticket is live against the new instance.
	fx.touchOwner(t)
	if err := fx.dev.LoginResume(fx.now, srv2.Certificate(), "acct"); err != nil {
		t.Fatalf("resume against restarted server: %v", err)
	}

	// No duplicate account: the log still holds exactly one enrollment
	// for "acct", and re-registering it is rejected by the recovered
	// store rather than silently double-enrolled.
	recs, _, err := store.ReadLog(fsys)
	if err != nil {
		t.Fatal(err)
	}
	enrolls := 0
	for _, rec := range recs {
		if rec.Kind == store.KindEnroll && rec.Account == "acct" {
			enrolls++
		}
	}
	if enrolls != 1 {
		t.Fatalf("%d enroll records for acct after restart+relogin, want 1", enrolls)
	}
	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "acct", "recovery-pw"); err == nil {
		t.Fatal("re-registering the recovered account succeeded")
	} else if !strings.Contains(err.Error(), "registration rejected") {
		t.Fatalf("re-register failed oddly: %v", err)
	}
}
