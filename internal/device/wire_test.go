package device

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"trust/internal/frame"
	"trust/internal/protocol"
	"trust/internal/sim"
	"trust/internal/webserver"
)

// Wire-level robustness for the HTTP transport: typed error round
// trips, media-type parsing, and the response-size cap.

func TestHTTPTypedErrorRoundTrip(t *testing.T) {
	fx := newFixture(t, nil)
	ts := httptest.NewServer(fx.server.Handler())
	defer ts.Close()
	tr := &HTTP{BaseURL: ts.URL, Client: ts.Client()}

	_, err := tr.SubmitLogin(0, &protocol.LoginSubmit{Domain: "www.xyz.com", Account: "ghost"})
	if !errors.Is(err, webserver.ErrUnknownAccount) {
		t.Fatalf("forged login error = %v, want ErrUnknownAccount", err)
	}
	_, err = tr.SubmitPageRequest(0, &protocol.PageRequest{Domain: "www.xyz.com", Account: "g", SessionID: "nope"})
	if !errors.Is(err, webserver.ErrUnknownSession) {
		t.Fatalf("forged page request error = %v, want ErrUnknownSession", err)
	}
	_, err = tr.SubmitResync(0, &protocol.ResyncRequest{Domain: "www.xyz.com", Account: "g", SessionID: "nope"})
	if !errors.Is(err, webserver.ErrUnknownSession) {
		t.Fatalf("forged resync error = %v, want ErrUnknownSession", err)
	}
	if Retryable(err) {
		t.Fatal("typed server verdict classified as retryable")
	}
}

func TestHTTPNetworkErrorsRetryable(t *testing.T) {
	tr := &HTTP{BaseURL: "http://127.0.0.1:1", Client: http.DefaultClient}
	if _, err := tr.FetchLoginPage(0); !Retryable(err) {
		t.Fatalf("socket failure on GET not retryable: %v", err)
	}
	if _, err := tr.SubmitLogin(0, &protocol.LoginSubmit{}); !Retryable(err) {
		t.Fatalf("socket failure on POST not retryable: %v", err)
	}
}

// TestHTTPParameterizedBinaryContentType is the regression test for
// the exact-match Content-Type bug: a parameterized media type must
// still route to the binary decoder.
func TestHTTPParameterizedBinaryContentType(t *testing.T) {
	page := &frame.Page{URL: "login", Title: "Login", Body: "touch to log in"}
	data, err := protocol.EncodeBinary(&protocol.LoginPage{Domain: "www.xyz.com", Nonce: "n", Page: page, Signature: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream; v=1")
		w.Write(data)
	}))
	defer ts.Close()
	tr := &HTTP{BaseURL: ts.URL, Client: ts.Client(), Binary: true}
	got, err := tr.FetchLoginPage(0)
	if err != nil {
		t.Fatalf("parameterized binary content type misrouted: %v", err)
	}
	if got.Domain != "www.xyz.com" || got.Page == nil {
		t.Fatalf("binary page decoded wrong: %+v", got)
	}
}

func TestHTTPOversizedResponseRejected(t *testing.T) {
	big := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(bytes.Repeat([]byte{'x'}, maxResponseBytes+1))
	}))
	defer big.Close()
	tr := &HTTP{BaseURL: big.URL, Client: big.Client()}
	if _, err := tr.FetchLoginPage(0); !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("oversized JSON body error = %v, want ErrResponseTooLarge", err)
	}

	bigBin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(bytes.Repeat([]byte{1}, maxResponseBytes+1))
	}))
	defer bigBin.Close()
	tb := &HTTP{BaseURL: bigBin.URL, Client: bigBin.Client(), Binary: true}
	if _, err := tb.FetchLoginPage(0); !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("oversized binary body error = %v, want ErrResponseTooLarge", err)
	}
}

// TestHTTPResponseExactlyAtCap: a body of exactly the cap is legal —
// the limit is a ceiling, not an off-by-one trap.
func TestHTTPResponseExactlyAtCap(t *testing.T) {
	page := &protocol.LoginPage{Domain: "www.xyz.com", Nonce: "n", Page: &frame.Page{URL: "u"}}
	base, err := json.Marshal(page)
	if err != nil {
		t.Fatal(err)
	}
	// Pad the page body so the marshalled JSON is exactly the cap: the
	// empty Body field is already present in base, and each padding
	// byte marshals to exactly one byte.
	pad := maxResponseBytes - len(base)
	page.Page.Body = string(bytes.Repeat([]byte{'y'}, pad))
	body, err := json.Marshal(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != maxResponseBytes {
		t.Fatalf("test construction off: body is %d bytes, want %d", len(body), maxResponseBytes)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	defer ts.Close()
	tr := &HTTP{BaseURL: ts.URL, Client: ts.Client()}
	got, err := tr.FetchLoginPage(0)
	if err != nil {
		t.Fatalf("at-cap body rejected: %v", err)
	}
	if got.Domain != "www.xyz.com" {
		t.Fatalf("at-cap body decoded wrong: %q", got.Domain)
	}
}

// TestHTTPResilientEndToEnd drives the full retry stack over real
// sockets: register and log in clean, then browse across a lossy link
// with resync recovering lost responses.
func TestHTTPResilientEndToEnd(t *testing.T) {
	fx := newFixture(t, nil)
	ts := httptest.NewServer(fx.server.Handler())
	defer ts.Close()

	ft := NewFaultyTransport(&HTTP{BaseURL: ts.URL, Client: ts.Client()}, FaultProfile{}, sim.NewRNG(11))
	fx.dev.transport = ft
	fx.dev.SetRetryPolicy(DefaultRetryPolicy(), sim.NewRNG(12))

	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "sock-acct", "pw"); err != nil {
		t.Fatal(err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Login(fx.now, fx.server.Certificate(), "sock-acct"); err != nil {
		t.Fatal(err)
	}
	if err := fx.dev.Resync(fx.now); err != nil {
		t.Fatalf("clean resync over sockets: %v", err)
	}

	ft.Profile = FaultProfile{DropRate: 0.3}
	for i := 0; i < 8; i++ {
		fx.touchOwner(t)
		now, err := fx.dev.BrowseResilient(fx.now, "view-statement")
		if err != nil {
			t.Fatalf("resilient browse %d over sockets: %v", i, err)
		}
		fx.now = now
	}
	if ft.Stats.DroppedRequests+ft.Stats.DroppedResponses == 0 {
		t.Fatal("link was never lossy; test proves nothing")
	}
	if report := fx.server.RunAudit(); report.Tampered != 0 {
		t.Fatalf("lossy honest session flagged by audit: %d of %d", report.Tampered, report.Checked)
	}
}
