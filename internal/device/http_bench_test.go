package device

import (
	"net/http/httptest"
	"testing"
	"time"

	"trust/internal/fingerprint"
	"trust/internal/flock"
	"trust/internal/frame"
	"trust/internal/geom"
	"trust/internal/pki"
	"trust/internal/placement"
	"trust/internal/protocol"
	"trust/internal/touch"
	"trust/internal/webserver"
)

// benchWire isolates the HTTP transport hot path: a live session over
// a real loopback server, driven directly by the protocol client so
// the benchmark measures the wire (marshal, socket, decode) and not
// the touch pipeline. Guards the request/response-buffer pooling in
// http.go — the streamed transport exists precisely because this path
// was the per-touch tax, so regressions here matter even as fallback.
type benchWire struct {
	srv    *webserver.Server
	client *protocol.Client
	sess   *protocol.Session
	tr     *HTTP
	now    time.Duration
	close  func()
}

func newBenchWire(b *testing.B, binary bool) *benchWire {
	b.Helper()
	ca, err := pki.NewCA("trust-root", pki.NewDeterministicRand(1))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := webserver.New("www.xyz.com", ca, 7)
	if err != nil {
		b.Fatal(err)
	}
	pl := placement.Placement{Sensors: []geom.Rect{geom.RectWH(180, 660, 120, 120)}}
	mod, err := flock.New(flock.DefaultConfig(pl), ca, "device-1", 99)
	if err != nil {
		b.Fatal(err)
	}
	f := fingerprint.Synthesize(4242, fingerprint.Loop)
	if err := mod.Enroll(fingerprint.NewTemplate(f)); err != nil {
		b.Fatal(err)
	}
	w := &benchWire{srv: srv, client: protocol.NewClient(mod)}
	touchOwner := func() {
		for i := 0; i < 30; i++ {
			ev := touch.Event{At: w.now, Pos: geom.Point{X: 240, Y: 720}, Pressure: 0.7, RadiusMM: 4.2, SpeedMMS: 1}
			out := mod.HandleTouch(ev, f)
			w.now += 500 * time.Millisecond
			if out.Kind == flock.Matched {
				return
			}
		}
		b.Fatal("owner touch never verified")
	}

	regPage := srv.ServeRegistrationPage(w.now)
	w.client.DisplayPage(regPage.Page, frame.View{Zoom: 1})
	touchOwner()
	sub, err := w.client.HandleRegistrationPage(w.now, regPage, "bench-acct")
	if err != nil {
		b.Fatal(err)
	}
	if res := srv.HandleRegistration(w.now, sub, "old-password-123"); !res.OK {
		b.Fatalf("registration rejected: %s", res.Reason)
	}
	lp := srv.ServeLoginPage(w.now)
	w.client.DisplayPage(lp.Page, frame.View{Zoom: 1})
	touchOwner()
	lsub, sess, err := w.client.HandleLoginPage(w.now, lp, srv.Certificate(), "bench-acct", 12)
	if err != nil {
		b.Fatal(err)
	}
	cp, err := srv.HandleLogin(w.now, lsub)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.client.AcceptContentPage(sess, cp); err != nil {
		b.Fatal(err)
	}
	w.sess = sess

	ts := httptest.NewServer(srv.Handler())
	w.tr = &HTTP{BaseURL: ts.URL, Client: ts.Client(), Binary: binary}
	w.close = ts.Close
	return w
}

func benchmarkHTTPPageRequest(b *testing.B, binary bool) {
	w := newBenchWire(b, binary)
	defer w.close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := w.client.BuildPageRequest(w.now, w.sess, "home", 12)
		if err != nil {
			b.Fatal(err)
		}
		cp, err := w.tr.SubmitPageRequest(w.now, req)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.client.AcceptContentPage(w.sess, cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPPageRequestBinary is the alloc guard for the pooled
// request/response buffers: run with -benchmem and compare allocs/op
// against docs/server-scaling.md.
func BenchmarkHTTPPageRequestBinary(b *testing.B) { benchmarkHTTPPageRequest(b, true) }

func BenchmarkHTTPPageRequestJSON(b *testing.B) { benchmarkHTTPPageRequest(b, false) }
