package device

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"trust/internal/protocol"
	"trust/internal/sim"
)

// StreamFaultProfile configures framing-level faults on a streamed
// connection — the failure modes a long-lived link adds on top of the
// per-message loss FaultyTransport models: a write cut mid-frame (link
// died with a partial frame on the wire) and a torn write (one frame
// arriving in two pieces). The zero value injects nothing.
type StreamFaultProfile struct {
	// CutRate is the probability a frame write is cut partway: a prefix
	// of the frame reaches the peer, then the connection closes. The
	// reader on the far side sees a truncated frame and must tear the
	// stream down without misparsing.
	CutRate float64
	// TearRate is the probability a frame write is split into two
	// separate writes (no loss — exercises reassembly across partial
	// arrivals).
	TearRate float64
	// HeartbeatWarp, when nonzero, rewrites every outgoing heartbeat's
	// timestamp to (sent time - HeartbeatWarp), clamped at zero — a
	// device whose clock stepped backwards mid-session, or a
	// time-rewinding man in the middle. The server's monotonicity
	// contract (webserver.MaxHeartbeatSkew and the lastNow clamp) is
	// what keeps this from dragging session time backwards; the device
	// detects the tampering when the verbatim echo disagrees with what
	// it believes it sent.
	HeartbeatWarp time.Duration
	// HandshakeGrace exempts the first n writes of each connection from
	// faults. Chaos sweeps set it to 1 so the hello always goes out
	// whole: the profile models an established link degrading, and a
	// faulted hello would trigger the transport's sticky HTTP downgrade
	// instead of the reconnect path under test.
	HandshakeGrace int
}

// StreamFaultStats counts what a FaultyDialer injected.
type StreamFaultStats struct {
	Conns int
	Cuts  int
	Tears int
	Warps int
}

// FaultyDialer wraps a stream dial function so every connection it
// hands out injects seeded mid-frame faults. All draws come from a
// sim.RNG at write time, and the stream transport serializes writes,
// so the same seed and call sequence produce a byte-identical fault
// schedule — chaos runs are exactly reproducible.
type FaultyDialer struct {
	Inner   func() (io.ReadWriteCloser, error)
	Profile StreamFaultProfile
	Stats   StreamFaultStats

	rng *sim.RNG
}

// NewFaultyDialer wraps inner with the given profile, drawing all
// fault decisions from rng.
func NewFaultyDialer(inner func() (io.ReadWriteCloser, error), profile StreamFaultProfile, rng *sim.RNG) *FaultyDialer {
	return &FaultyDialer{Inner: inner, Profile: profile, rng: rng}
}

// Dial opens a connection through the fault wrapper. Pass it as the
// stream transport's Dial.
func (d *FaultyDialer) Dial() (io.ReadWriteCloser, error) {
	rwc, err := d.Inner()
	if err != nil {
		return nil, err
	}
	d.Stats.Conns++
	return &faultyStreamConn{d: d, rwc: rwc}, nil
}

// faultyStreamConn injects write-side faults on one connection. Reads
// pass through untouched: every client-side fault already propagates
// to the server (a cut closes the pipe under the server's reader).
type faultyStreamConn struct {
	d      *FaultyDialer
	rwc    io.ReadWriteCloser
	writes int
}

func (c *faultyStreamConn) Read(p []byte) (int, error) { return c.rwc.Read(p) }

// isHeartbeatFrame matches a write that is exactly one heartbeat frame:
// the 5-byte header (type + length 16) plus the fixed 16-byte payload.
// The stream transport writes heartbeats as single whole frames, so
// this is the only shape they take on the wire.
func isHeartbeatFrame(p []byte) bool {
	return len(p) == 21 && p[0] == byte(protocol.FrameHeartbeat) &&
		binary.BigEndian.Uint32(p[1:5]) == 16
}

func (c *faultyStreamConn) Close() error { return c.rwc.Close() }

func (c *faultyStreamConn) Write(p []byte) (int, error) {
	c.writes++
	if c.writes > c.d.Profile.HandshakeGrace && len(p) > 0 {
		if w := c.d.Profile.HeartbeatWarp; w > 0 && isHeartbeatFrame(p) {
			c.d.Stats.Warps++
			// Rewrite on a copy: the frame buffer belongs to the caller.
			q := append([]byte(nil), p...)
			now := time.Duration(binary.BigEndian.Uint64(q[13:21])) - w
			if now < 0 {
				now = 0
			}
			binary.BigEndian.PutUint64(q[13:21], uint64(now))
			p = q
		}
		if r := c.d.Profile.CutRate; r > 0 && c.d.rng.Bool(r) {
			c.d.Stats.Cuts++
			k := c.d.rng.Intn(len(p)) // 0..len-1: never the whole frame
			if k > 0 {
				c.rwc.Write(p[:k])
			}
			c.rwc.Close()
			return k, fmt.Errorf("%w: stream cut mid-frame after %d of %d bytes", ErrNetwork, k, len(p))
		}
		if r := c.d.Profile.TearRate; r > 0 && len(p) > 1 && c.d.rng.Bool(r) {
			c.d.Stats.Tears++
			k := 1 + c.d.rng.Intn(len(p)-1)
			n1, err := c.rwc.Write(p[:k])
			if err != nil {
				return n1, err
			}
			n2, err := c.rwc.Write(p[k:])
			return n1 + n2, err
		}
	}
	return c.rwc.Write(p)
}
