// Package device models the untrusted half of the mobile phone: the
// host SoC running the browser and network stack. Per the paper's
// threat model (Sec IV-B assumption (i)), everything here may be under
// malware control — so the device only moves messages and pixels
// around, while all authentication state lives in the FLock module it
// embeds. Malware hooks let the attack harness corrupt exactly the
// things a compromised software stack could corrupt: displayed frames,
// outbound requests, and action routing.
package device

import (
	"errors"
	"fmt"
	"time"

	"trust/internal/fingerprint"
	"trust/internal/flock"
	"trust/internal/frame"
	"trust/internal/pki"
	"trust/internal/protocol"
	"trust/internal/sim"
	"trust/internal/touch"
)

// Transport moves protocol messages to a server. Implementations:
// InMemory (direct calls), HTTP (net/http loopback), and
// FaultyTransport (a deterministic lossy-network wrapper around either).
type Transport interface {
	FetchRegistrationPage(now time.Duration) (*protocol.RegistrationPage, error)
	SubmitRegistration(now time.Duration, sub *protocol.RegistrationSubmit, recovery string) (protocol.RegistrationResult, error)
	FetchLoginPage(now time.Duration) (*protocol.LoginPage, error)
	SubmitLogin(now time.Duration, sub *protocol.LoginSubmit) (*protocol.ContentPage, error)
	SubmitResume(now time.Duration, sub *protocol.ResumeSubmit) (*protocol.ContentPage, error)
	SubmitPageRequest(now time.Duration, req *protocol.PageRequest) (*protocol.ContentPage, error)
	SubmitResync(now time.Duration, req *protocol.ResyncRequest) (*protocol.ContentPage, error)
}

// sessionBinder is implemented by transports that hold per-session
// connection state (the streamed transport): the device hands them the
// session as soon as it is established so they can bind eagerly.
type sessionBinder interface {
	BindSession(sess *protocol.Session)
}

// batchTransport is implemented by transports that can carry several
// touch-authenticated requests in one exchange. PredictNonce exposes
// the deterministic response-nonce chain so request i of a batch can
// echo the nonce response i-1 will carry.
type batchTransport interface {
	SubmitPageBatch(now time.Duration, reqs []*protocol.PageRequest) ([]*protocol.ContentPage, error)
	PredictNonce(ahead int) (protocol.Nonce, bool)
}

// Malware models a compromised browser / software stack. A nil Malware
// is a clean device. Each capability corresponds to an attack in the
// paper's security analysis.
type Malware struct {
	// TamperFrame rewrites pages before display (UI spoofing: "change
	// the organization of user interface to fool the user").
	TamperFrame func(p *frame.Page) *frame.Page
	// RewriteAction changes the action attached to the user's touch
	// before the request is built (clickjacking the intent).
	RewriteAction func(action string) string
	// MutateRequest corrupts the signed/MAC'd request on the wire
	// (man-in-the-browser).
	MutateRequest func(req *protocol.PageRequest)
}

// Device is one phone: untrusted host plus embedded FLock module.
type Device struct {
	Name    string
	Module  *flock.Module
	Client  *protocol.Client
	Malware *Malware

	transport Transport
	session   *protocol.Session
	current   *frame.Page // page the server last sent
	view      frame.View
	// RiskWindow is the risk-factor window reported to servers.
	RiskWindow int

	// Retry, when non-nil, makes the *Resilient flows retry retryable
	// transport faults with capped exponential backoff in virtual time
	// (see retry.go). nil keeps the historical fail-fast behavior.
	Retry *RetryPolicy
	// retryRNG supplies the deterministic backoff jitter.
	retryRNG *sim.RNG
	// degraded marks the device as serving from local cache under the
	// module's local continuous auth after the server became
	// unreachable (the paper's local-mode fallback).
	degraded bool
	// tel counts recovery-path events (metrics.go).
	tel deviceTel

	// Resumption-ticket cache (device goroutine only). The server
	// attaches an opaque single-use ticket to every login and resume
	// response; LoginResume presents it to skip the Fig 10 cold path.
	// ticketKey is the session key the ticket seals — the MAC key a
	// resume submission must prove, and the input to the resumed-session
	// rekey. loginPage is the login page cached at the last full login:
	// resume needs a displayed login frame to attest (the server audits
	// a resume's frame hash against the login URL) without spending a
	// round trip fetching one.
	ticket        []byte
	ticketKey     []byte
	ticketDomain  string
	ticketAccount string
	loginPage     *frame.Page
}

// New assembles a device around a module and a transport.
func New(name string, m *flock.Module, t Transport) *Device {
	return &Device{
		Name:       name,
		Module:     m,
		Client:     protocol.NewClient(m),
		transport:  t,
		view:       frame.View{Zoom: 1},
		RiskWindow: 12,
	}
}

// Session returns the live session, if any.
func (d *Device) Session() *protocol.Session { return d.session }

// SetView changes the display transform (the user pinch-zoomed or
// scrolled) and re-renders the current page through the FLock display
// path, so the next request attests the view actually on screen. Zoom
// snaps to the nearest standard stop and scroll to the standard step —
// the finite view set the server audits against.
func (d *Device) SetView(v frame.View) {
	// Snap to the standard view lattice.
	best := frame.ZoomStops[0]
	for _, z := range frame.ZoomStops {
		if abs(v.Zoom-z) < abs(v.Zoom-best) {
			best = z
		}
	}
	v.Zoom = best
	if v.ScrollY < 0 {
		v.ScrollY = 0
	}
	v.ScrollY = float64(int(v.ScrollY/frame.ScrollStepPX)) * frame.ScrollStepPX
	d.view = v
	if d.current != nil {
		d.display(d.current)
	}
}

// View returns the current display transform.
func (d *Device) View() frame.View { return d.view }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// CurrentPage returns the page the server believes is displayed.
func (d *Device) CurrentPage() *frame.Page { return d.current }

// display pushes a page through the FLock display path, applying any
// malware frame tampering first. The repeater hashes what is actually
// shown — that is the whole point of the display repeater.
func (d *Device) display(p *frame.Page) {
	shown := p
	if d.Malware != nil && d.Malware.TamperFrame != nil {
		shown = d.Malware.TamperFrame(p.Clone())
	}
	d.Client.DisplayPage(shown, d.view)
	d.current = p
}

// Touch forwards a physical touch to the module.
func (d *Device) Touch(ev touch.Event, finger *fingerprint.Finger) flock.TouchOutcome {
	return d.Module.HandleTouch(ev, finger)
}

// Register runs the Fig 9 flow: fetch the registration page, display
// it, then submit once the module holds a fresh verified touch.
func (d *Device) Register(now time.Duration, account, recovery string) error {
	page, err := d.transport.FetchRegistrationPage(now)
	if err != nil {
		return fmt.Errorf("device: fetching registration page: %w", err)
	}
	d.display(page.Page)
	sub, err := d.Client.HandleRegistrationPage(now, page, account)
	if err != nil {
		return err
	}
	res, err := d.transport.SubmitRegistration(now, sub, recovery)
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("device: registration rejected: %s", res.Reason)
	}
	return nil
}

// Login runs the Fig 10 login: fetch and display the login page,
// submit the session-key bundle after a verified touch, and accept the
// first content page. The server certificate comes from the transport;
// the FLock client checks it against the key pinned at registration.
func (d *Device) Login(now time.Duration, cert *pki.Certificate, account string) error {
	page, err := d.transport.FetchLoginPage(now)
	if err != nil {
		return fmt.Errorf("device: fetching login page: %w", err)
	}
	d.display(page.Page)
	sub, sess, err := d.Client.HandleLoginPage(now, page, cert, account, d.RiskWindow)
	if err != nil {
		return err
	}
	cp, err := d.transport.SubmitLogin(now, sub)
	if err != nil {
		return err
	}
	if err := d.Client.AcceptContentPage(sess, cp); err != nil {
		return err
	}
	d.session = sess
	d.loginPage = page.Page
	d.cacheTicket(cp.Ticket, sess)
	d.bindTransport()
	d.display(cp.Page)
	return nil
}

// cacheTicket retains the resumption ticket a login or resume response
// carried, together with the session key it seals. An empty ticket
// (server declined to issue) leaves any previous cache in place — the
// old ticket may still be live.
func (d *Device) cacheTicket(ticket []byte, sess *protocol.Session) {
	if len(ticket) == 0 {
		return
	}
	d.ticket = append(d.ticket[:0], ticket...)
	d.ticketKey = append(d.ticketKey[:0], sess.Key...)
	d.ticketDomain = sess.Domain
	d.ticketAccount = sess.Account
}

// clearTicket drops the cached ticket (it was spent, rejected, or its
// fate is unknown after a transport fault — all cases where presenting
// it again can only fail).
func (d *Device) clearTicket() {
	d.ticket = nil
	d.ticketKey = nil
}

// HasTicket reports whether a resumption ticket is cached.
func (d *Device) HasTicket() bool { return len(d.ticket) > 0 }

// errNoTicket routes LoginResume straight to the full login.
var errNoTicket = errors.New("device: no cached resumption ticket")

// LoginResume is the resume-first login: present the cached ticket for
// a symmetric-only session re-establishment, falling back to the full
// Fig 10 login on any failure. The fallback is deliberately broad —
// expired or replayed tickets (ErrBadTicket), a reset account, a MAC
// verdict, or a network fault with the ticket's fate unknown all end
// with the ticket dropped and the cold path run — so the device always
// converges to a session if a full login can get one. Only a missing
// fresh touch propagates directly: the cold path requires the same
// touch and would fail identically.
func (d *Device) LoginResume(now time.Duration, cert *pki.Certificate, account string) error {
	err := d.tryResume(now, account)
	if err == nil {
		return nil
	}
	if errors.Is(err, protocol.ErrNoFreshTouch) {
		return err
	}
	if !errors.Is(err, errNoTicket) {
		d.clearTicket()
		d.tel.resumeFallbacks.Add(1)
	}
	return d.Login(now, cert, account)
}

// tryResume runs one ticket presentation end to end: re-display the
// cached login page (the frame hash a resume attests), build the MAC'd
// submission, submit, and accept the rekeyed session.
func (d *Device) tryResume(now time.Duration, account string) error {
	if len(d.ticket) == 0 || d.loginPage == nil || d.ticketAccount != account {
		return errNoTicket
	}
	d.display(d.loginPage)
	sub, sess, err := d.Client.BuildResumeSubmit(now, d.ticketDomain, account, d.ticket, d.ticketKey, d.RiskWindow)
	if err != nil {
		return err
	}
	cp, err := d.transport.SubmitResume(now, sub)
	if err != nil {
		return err
	}
	if err := d.Client.AcceptResumePage(sess, cp); err != nil {
		return err
	}
	d.session = sess
	d.cacheTicket(cp.Ticket, sess)
	d.bindTransport()
	d.display(cp.Page)
	return nil
}

// bindTransport hands the established session to a session-binding
// transport (no-op for the stateless ones).
func (d *Device) bindTransport() {
	if b, ok := d.transport.(sessionBinder); ok && d.session != nil {
		b.BindSession(d.session)
	}
}

// AdoptSession installs a session that was established by driving the
// protocol step by step outside the device (harness transcripts do
// this) so that Browse works afterwards.
func (d *Device) AdoptSession(sess *protocol.Session, cp *protocol.ContentPage) error {
	if sess == nil || cp == nil || cp.Page == nil {
		return errors.New("device: adopting incomplete session")
	}
	d.session = sess
	d.current = cp.Page
	d.bindTransport()
	return nil
}

// Browse issues one continuous-auth page request for the given action
// (the user just touched the corresponding button) and displays the
// response.
func (d *Device) Browse(now time.Duration, action string) error {
	if d.session == nil {
		return errors.New("device: no session")
	}
	if d.Malware != nil && d.Malware.RewriteAction != nil {
		action = d.Malware.RewriteAction(action)
	}
	req, err := d.Client.BuildPageRequest(now, d.session, action, d.RiskWindow)
	if err != nil {
		return err
	}
	if d.Malware != nil && d.Malware.MutateRequest != nil {
		d.Malware.MutateRequest(req)
	}
	cp, err := d.transport.SubmitPageRequest(now, req)
	if err != nil {
		return err
	}
	if err := d.Client.AcceptContentPage(d.session, cp); err != nil {
		return err
	}
	d.display(cp.Page)
	return nil
}

// BrowseBatch issues one touch-authenticated request per action,
// pipelined: on a batch-capable transport all requests travel in one
// frame, each echoing its pre-computed chain nonce, and the responses
// come back in order. On any other transport (or a downgraded stream)
// it degrades to sequential Browse calls — same outcome, one round
// trip per action.
func (d *Device) BrowseBatch(now time.Duration, actions []string) error {
	if len(actions) == 0 {
		return nil
	}
	if d.session == nil {
		return errors.New("device: no session")
	}
	bt, ok := d.transport.(batchTransport)
	if !ok {
		return d.browseSequential(now, actions)
	}
	reqs := make([]*protocol.PageRequest, 0, len(actions))
	for i, action := range actions {
		nonce, live := bt.PredictNonce(i)
		if !live {
			return d.browseSequential(now, actions)
		}
		if d.Malware != nil && d.Malware.RewriteAction != nil {
			action = d.Malware.RewriteAction(action)
		}
		req, err := d.Client.BuildPageRequestAt(now, d.session, action, d.RiskWindow, nonce)
		if err != nil {
			return err
		}
		if d.Malware != nil && d.Malware.MutateRequest != nil {
			d.Malware.MutateRequest(req)
		}
		reqs = append(reqs, req)
	}
	pages, err := bt.SubmitPageBatch(now, reqs)
	if err != nil {
		return err
	}
	for _, cp := range pages {
		if err := d.Client.AcceptContentPage(d.session, cp); err != nil {
			return err
		}
	}
	d.display(pages[len(pages)-1].Page)
	return nil
}

// browseSequential is BrowseBatch's one-at-a-time fallback.
func (d *Device) browseSequential(now time.Duration, actions []string) error {
	for _, action := range actions {
		if err := d.Browse(now, action); err != nil {
			return err
		}
	}
	return nil
}

// ScheduleHeartbeats arranges `count` stream heartbeats every `every`
// of virtual time on clock, starting one interval from now. Heartbeats
// ride the streamed transport's Ping; on any other transport (or after
// a downgrade) the events are no-ops. Virtual-time scheduling keeps
// liveness probes deterministic — no wall-clock tickers in the stream
// goroutines.
func (d *Device) ScheduleHeartbeats(clock *sim.Clock, every time.Duration, count int) {
	type pinger interface{ Ping(now time.Duration) error }
	p, ok := d.transport.(pinger)
	if !ok {
		return
	}
	var schedule func(left int)
	schedule = func(left int) {
		if left <= 0 {
			return
		}
		clock.After(every, func() {
			_ = p.Ping(clock.Now())
			schedule(left - 1)
		})
	}
	schedule(count)
}

// InjectRequest models malware asserting a user action with NO backing
// touch: it asks the module to build a signed request directly. The
// module's touch-authorization gate is what stands in the way.
func (d *Device) InjectRequest(now time.Duration, action string) error {
	if d.session == nil {
		return errors.New("device: no session")
	}
	req, err := d.Client.BuildPageRequest(now, d.session, action, d.RiskWindow)
	if err != nil {
		return err
	}
	_, err = d.transport.SubmitPageRequest(now, req)
	return err
}
