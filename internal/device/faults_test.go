package device

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"trust/internal/protocol"
	"trust/internal/sim"
	"trust/internal/webserver"
)

// armFaults wraps the fixture's transport in a FaultyTransport (clean
// profile — tests flip faults on after the setup flows) and arms the
// retry policy.
func armFaults(fx *fixture, seed uint64, policy RetryPolicy) *FaultyTransport {
	ft := NewFaultyTransport(fx.dev.transport, FaultProfile{}, sim.NewRNG(seed))
	fx.dev.transport = ft
	fx.dev.SetRetryPolicy(policy, sim.NewRNG(seed+1))
	return ft
}

// lossyBrowseTranscript runs the acceptance scenario once: clean
// register+login, then rounds of continuous-auth browsing over a
// 30 %-loss link with retries, recording every observable into a
// transcript string.
func lossyBrowseTranscript(t *testing.T, rounds int) string {
	t.Helper()
	fx := newFixture(t, nil)
	ft := armFaults(fx, 77, DefaultRetryPolicy())
	fx.registerAndLogin(t)
	ft.Profile = FaultProfile{DropRate: 0.3}

	var b strings.Builder
	for i := 0; i < rounds; i++ {
		fx.touchOwner(t)
		action := fmt.Sprintf("page-%d", i%5)
		now, err := fx.dev.BrowseResilient(fx.now, action)
		if err != nil {
			t.Fatalf("round %d: browse failed despite retries: %v", i, err)
		}
		fx.now = now
		fmt.Fprintf(&b, "round=%d action=%s now=%d degraded=%v nonce=%s\n",
			i, action, int64(fx.now), fx.dev.Degraded(), fx.dev.Session().LastNonce)
	}
	fmt.Fprintf(&b, "stats=%+v\n", ft.Stats)
	fmt.Fprintf(&b, "audit=%d accepted=%d rejected=%d sessions=%d\n",
		fx.server.RunAudit().Checked, fx.server.AcceptedRequests(),
		fx.server.RejectedRequests(), fx.server.SessionCount())
	return b.String()
}

// TestLossyBrowseCompletesDeterministically is the ISSUE's acceptance
// scenario: under FaultProfile{DropRate: 0.3} with a sane retry policy
// the continuous-auth flow completes every round, and two identical
// runs produce byte-identical transcripts.
func TestLossyBrowseCompletesDeterministically(t *testing.T) {
	const rounds = 20
	t1 := lossyBrowseTranscript(t, rounds)
	t2 := lossyBrowseTranscript(t, rounds)
	if t1 != t2 {
		t.Fatalf("lossy browse transcript not deterministic:\nrun1:\n%s\nrun2:\n%s", t1, t2)
	}
	// The link must actually have been lossy, or the test proves nothing.
	if strings.Contains(t1, "DroppedRequests:0 DroppedResponses:0") {
		t.Fatalf("fault injector never dropped anything:\n%s", t1)
	}
}

// TestLossyBrowseFailsWithoutRetries is the control: the same loss
// profile with retries disabled (plain fail-fast Browse) loses
// messages with no recovery, and once a response is lost the session
// nonce desynchronizes permanently.
func TestLossyBrowseFailsWithoutRetries(t *testing.T) {
	fx := newFixture(t, nil)
	ft := armFaults(fx, 77, RetryPolicy{MaxAttempts: 1})
	fx.registerAndLogin(t)
	ft.Profile = FaultProfile{DropRate: 0.3}

	var netErrs, nonceErrs int
	for i := 0; i < 20; i++ {
		fx.touchOwner(t)
		err := fx.dev.Browse(fx.now, "page")
		switch {
		case err == nil:
		case errors.Is(err, webserver.ErrBadNonce):
			nonceErrs++
		case Retryable(err):
			netErrs++
		default:
			t.Fatalf("round %d: unexpected error class: %v", i, err)
		}
	}
	if netErrs == 0 {
		t.Fatal("no network faults surfaced with retries disabled")
	}
	if ft.Stats.DroppedResponses > 0 && nonceErrs == 0 {
		t.Fatal("a response was dropped but the session never desynchronized")
	}
	if nonceErrs == 0 {
		t.Skip("seed produced no response drops; desync branch not reached")
	}
}

// TestBrowseResilientDegradesOffline: when every attempt dies on the
// network, the device falls back to the local cache under the module's
// local continuous auth, and recovers (clearing Degraded) once the
// link heals.
func TestBrowseResilientDegradesOffline(t *testing.T) {
	fx := newFixture(t, nil)
	ft := armFaults(fx, 3, DefaultRetryPolicy())
	fx.registerAndLogin(t)

	ft.Profile = FaultProfile{DropRate: 1} // total outage
	fx.touchOwner(t)
	before := fx.server.AcceptedRequests()
	now, err := fx.dev.BrowseResilient(fx.now, "page")
	if err != nil {
		t.Fatalf("offline browse should degrade, not fail: %v", err)
	}
	fx.now = now
	if !fx.dev.Degraded() {
		t.Fatal("device not marked degraded after total outage")
	}
	if fx.server.AcceptedRequests() != before {
		t.Fatal("server accepted a request during a total outage")
	}

	ft.Profile = FaultProfile{} // link heals
	fx.touchOwner(t)
	now, err = fx.dev.BrowseResilient(fx.now, "page")
	if err != nil {
		t.Fatalf("browse after link healed: %v", err)
	}
	fx.now = now
	if fx.dev.Degraded() {
		t.Fatal("degraded flag not cleared by a successful round-trip")
	}
}

// TestBrowseResilientNoFallbackWithoutTouch: degradation is gated on
// the module's local continuous auth. With backoffs long enough to
// outlive the touch-authorization window, an unreachable server is a
// hard failure.
func TestBrowseResilientNoFallbackWithoutTouch(t *testing.T) {
	fx := newFixture(t, nil)
	ft := armFaults(fx, 4, RetryPolicy{MaxAttempts: 3, BaseDelay: 20 * time.Second, MaxDelay: 20 * time.Second})
	fx.registerAndLogin(t)
	ft.Profile = FaultProfile{DropRate: 1}
	fx.touchOwner(t)
	_, err := fx.dev.BrowseResilient(fx.now, "page")
	if err == nil {
		t.Fatal("degraded mode granted without a live touch authorization")
	}
	if !errors.Is(err, protocol.ErrNoFreshTouch) {
		t.Fatalf("outage past the touch window should fail on the touch gate: %v", err)
	}
	if fx.dev.Degraded() {
		t.Fatal("device marked degraded despite failing the local-auth gate")
	}
}

// TestCorruptionIsTerminal: a corrupted MAC draws a typed ErrBadMAC
// from the server, which the retry layer must treat as a verdict — one
// delivery, no retries.
func TestCorruptionIsTerminal(t *testing.T) {
	fx := newFixture(t, nil)
	ft := armFaults(fx, 5, DefaultRetryPolicy())
	fx.registerAndLogin(t)
	ft.Profile = FaultProfile{CorruptRate: 1}
	fx.touchOwner(t)
	calls := ft.Stats.Calls
	_, err := fx.dev.BrowseResilient(fx.now, "page")
	if !errors.Is(err, webserver.ErrBadMAC) {
		t.Fatalf("corrupted request error = %v, want ErrBadMAC", err)
	}
	if got := ft.Stats.Calls - calls; got != 1 {
		t.Fatalf("terminal rejection retried: %d deliveries", got)
	}
	if ft.Stats.Corrupted == 0 {
		t.Fatal("corruption counter never advanced")
	}
}

// TestDuplicateDeliveryIsIdempotent: with every request delivered
// twice, browsing still works and the server applies each interaction
// exactly once — duplicates die on the consumed nonce and log nothing.
func TestDuplicateDeliveryIsIdempotent(t *testing.T) {
	fx := newFixture(t, nil)
	ft := armFaults(fx, 6, DefaultRetryPolicy())
	fx.registerAndLogin(t)
	auditAfterLogin := fx.server.RunAudit().Checked
	ft.Profile = FaultProfile{DuplicateRate: 1}
	const rounds = 5
	for i := 0; i < rounds; i++ {
		fx.touchOwner(t)
		now, err := fx.dev.BrowseResilient(fx.now, "page")
		if err != nil {
			t.Fatalf("round %d under duplication: %v", i, err)
		}
		fx.now = now
	}
	if ft.Stats.Duplicated < rounds {
		t.Fatalf("duplicated only %d of %d deliveries", ft.Stats.Duplicated, rounds)
	}
	if got := fx.server.RunAudit().Checked - auditAfterLogin; got != rounds {
		t.Fatalf("server logged %d interactions for %d browses — duplicates double-applied", got, rounds)
	}
	if fx.server.SessionCount() != 1 {
		t.Fatalf("duplicates created sessions: %d live", fx.server.SessionCount())
	}
}

// TestResyncRecoversLostResponse: when a response is lost AFTER the
// server applied the action (simulated by delivering a request behind
// the device's back), the device's next request draws ErrBadNonce and
// the resync protocol recovers the session.
func TestResyncRecoversLostResponse(t *testing.T) {
	fx := newFixture(t, nil)
	fx.registerAndLogin(t)

	// Deliver a page request whose response the device never sees: the
	// server rotates the session nonce past the device.
	fx.touchOwner(t)
	req, err := fx.dev.Client.BuildPageRequest(fx.now, fx.dev.Session(), "lost-action", fx.dev.RiskWindow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.server.HandlePageRequest(fx.now, req); err != nil {
		t.Fatal(err)
	}

	// Fail-fast browse now desyncs on the stale nonce.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "page"); !errors.Is(err, webserver.ErrBadNonce) {
		t.Fatalf("stale-nonce browse error = %v, want ErrBadNonce", err)
	}

	// Resync re-serves the last page under a fresh nonce...
	if err := fx.dev.Resync(fx.now); err != nil {
		t.Fatalf("resync: %v", err)
	}
	// ...after which normal browsing resumes.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "page"); err != nil {
		t.Fatalf("browse after resync: %v", err)
	}
}

// TestBrowseResilientHealsBadNonceInline: the resilient flow handles
// the stale-nonce case by itself — no caller intervention.
func TestBrowseResilientHealsBadNonceInline(t *testing.T) {
	fx := newFixture(t, nil)
	armFaults(fx, 8, DefaultRetryPolicy())
	fx.registerAndLogin(t)

	fx.touchOwner(t)
	req, err := fx.dev.Client.BuildPageRequest(fx.now, fx.dev.Session(), "lost-action", fx.dev.RiskWindow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.server.HandlePageRequest(fx.now, req); err != nil {
		t.Fatal(err)
	}

	fx.touchOwner(t)
	if _, err := fx.dev.BrowseResilient(fx.now, "page"); err != nil {
		t.Fatalf("resilient browse should heal a stale nonce: %v", err)
	}
}

// TestLoginResilientRetriesNetworkFaults: login refetches the page on
// every attempt (single-use nonces) and survives a lossy link.
func TestLoginResilientRetriesNetworkFaults(t *testing.T) {
	fx := newFixture(t, nil)
	ft := armFaults(fx, 9, RetryPolicy{MaxAttempts: 25, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, JitterFrac: 0.2})
	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "acct", "pw"); err != nil {
		t.Fatal(err)
	}
	ft.Profile = FaultProfile{DropRate: 0.4}
	fx.touchOwner(t)
	now, err := fx.dev.LoginResilient(fx.now, fx.server.Certificate(), "acct")
	if err != nil {
		t.Fatalf("resilient login on lossy link: %v", err)
	}
	fx.now = now
	if fx.dev.Session() == nil {
		t.Fatal("no session after resilient login")
	}
	if ft.Stats.DroppedRequests+ft.Stats.DroppedResponses == 0 {
		t.Fatal("link was never lossy; test proves nothing")
	}
}

// TestRetryPolicyBackoffShape: capped exponential growth, jitter
// bounded by JitterFrac, deterministic for a fixed RNG stream.
func TestRetryPolicyBackoffShape(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseDelay: 50 * time.Millisecond, MaxDelay: 400 * time.Millisecond}
	for i, want := range []time.Duration{50, 100, 200, 400, 400, 400} {
		if got := p.backoff(i+1, nil); got != want*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
	p.JitterFrac = 0.2
	rng := sim.NewRNG(1)
	for a := 1; a <= 6; a++ {
		nominal := p.backoff(a, nil)
		got := p.backoff(a, rng)
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if got < lo || got > hi {
			t.Errorf("jittered backoff(%d) = %v outside [%v, %v]", a, got, lo, hi)
		}
	}
	r1, r2 := sim.NewRNG(9), sim.NewRNG(9)
	for a := 1; a <= 6; a++ {
		if p.backoff(a, r1) != p.backoff(a, r2) {
			t.Fatal("jitter not deterministic for identical RNG streams")
		}
	}
}

// TestInterceptorCapturesSurviveMutation is the regression test for
// the shallow-copy capture bug: a tamper hook rewriting the live
// message in place must not silently rewrite the captured traffic.
func TestInterceptorCapturesSurviveMutation(t *testing.T) {
	fx := newFixture(t, nil)
	ic := &Interceptor{}
	fx.dev.transport.(*InMemory).Interceptor = ic

	var loginOrig, reqOrig byte
	ic.OnLoginSubmit = func(sub *protocol.LoginSubmit) *protocol.LoginSubmit {
		loginOrig = sub.MAC[0]
		sub.MAC[0] ^= 0xff // in-place tamper AFTER capture
		return sub
	}
	ic.OnPageRequest = func(req *protocol.PageRequest) *protocol.PageRequest {
		reqOrig = req.MAC[0]
		req.MAC[0] ^= 0xff
		return req
	}

	fx.touchOwner(t)
	if err := fx.dev.Register(fx.now, "acct", "pw"); err != nil {
		t.Fatal(err)
	}
	fx.touchOwner(t)
	// Both flows are rejected server-side (the MAC is tampered); the
	// point is what the interceptor retained.
	if err := fx.dev.Login(fx.now, fx.server.Certificate(), "acct"); !errors.Is(err, webserver.ErrBadMAC) {
		t.Fatalf("tampered login error = %v, want ErrBadMAC", err)
	}
	if ic.CapturedLogin == nil || ic.CapturedLogin.MAC[0] != loginOrig {
		t.Fatal("captured login submission aliased the tampered message")
	}

	// Establish a real session (hooks off), then tamper a page request.
	ic.OnLoginSubmit = nil
	fx.touchOwner(t)
	if err := fx.dev.Login(fx.now, fx.server.Certificate(), "acct"); err != nil {
		t.Fatal(err)
	}
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "page"); !errors.Is(err, webserver.ErrBadMAC) {
		t.Fatalf("tampered browse error = %v, want ErrBadMAC", err)
	}
	last := ic.CapturedRequests[len(ic.CapturedRequests)-1]
	if last.MAC[0] != reqOrig {
		t.Fatal("captured page request aliased the tampered message")
	}
}
