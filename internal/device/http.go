package device

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"trust/internal/protocol"
	"trust/internal/webserver"
)

// HTTP is the Transport implementation speaking to a webserver.Handler
// over real sockets.
type HTTP struct {
	BaseURL string
	Client  *http.Client
	// Binary selects the compact binary codec (application/octet-
	// stream) instead of JSON on every request and response.
	Binary bool
}

const binaryMIME = "application/octet-stream"

var _ Transport = (*HTTP)(nil)

func (t *HTTP) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// requestURL builds the endpoint URL. The hot path (no extra query
// values) is a plain concatenation — url.Values plus Encode costs four
// allocations per request for a query string that is always "now=N".
func (t *HTTP) requestURL(path string, now time.Duration, extra url.Values) string {
	if len(extra) == 0 {
		return t.BaseURL + path + "?now=" + strconv.FormatInt(int64(now), 10)
	}
	q := url.Values{"now": {strconv.FormatInt(int64(now), 10)}}
	for k, vs := range extra {
		q[k] = vs
	}
	return t.BaseURL + path + "?" + q.Encode()
}

func (t *HTTP) get(path string, now time.Duration, out any) error {
	req, err := http.NewRequest(http.MethodGet, t.requestURL(path, now, nil), nil)
	if err != nil {
		return err
	}
	if t.Binary {
		req.Header.Set("Accept", binaryMIME)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		// Socket-level failures are the retryable class: the request may
		// or may not have reached the server (see retry.go).
		return fmt.Errorf("%w: GET %s: %v", ErrNetwork, path, err)
	}
	defer resp.Body.Close()
	return t.decodeResponse(resp, out)
}

// postBody recycles request-body buffers and their readers: the
// continuous-auth hot path posts one PageRequest per touch, and
// marshalling each into a fresh slice plus a fresh reader dominated
// the transport's client-side allocation profile. Safe to recycle
// after Do returns — the transport has fully sent (or abandoned) the
// body by then, and the buffer is not returned to the pool until the
// response is decoded.
type postBody struct {
	buf []byte
	rd  bytes.Reader
}

var postBodyPool = sync.Pool{New: func() any { return new(postBody) }}

func (t *HTTP) post(path string, now time.Duration, extra url.Values, in, out any) error {
	pb := postBodyPool.Get().(*postBody)
	defer postBodyPool.Put(pb)
	contentType := "application/json"
	var err error
	if t.Binary {
		pb.buf, err = protocol.EncodeBinaryAppend(pb.buf[:0], in)
		contentType = binaryMIME
	} else {
		var body []byte
		body, err = json.Marshal(in)
		pb.buf = append(pb.buf[:0], body...)
	}
	if err != nil {
		return err
	}
	pb.rd.Reset(pb.buf)
	req, err := http.NewRequest(http.MethodPost, t.requestURL(path, now, extra), &pb.rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	if t.Binary {
		req.Header.Set("Accept", binaryMIME)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return fmt.Errorf("%w: POST %s: %v", ErrNetwork, path, err)
	}
	defer resp.Body.Close()
	return t.decodeResponse(resp, out)
}

// maxResponseBytes caps how much of a server response the device will
// buffer. Oversized bodies are rejected with ErrResponseTooLarge
// instead of being silently truncated into a confusing decode error.
const maxResponseBytes = 1 << 20

// ErrResponseTooLarge reports a response body over maxResponseBytes.
var ErrResponseTooLarge = fmt.Errorf("device: response body exceeds %d-byte cap", maxResponseBytes)

// respBufPool recycles response-read buffers. Recycling is safe
// because neither decoder aliases its input: the binary reader copies
// every byte slice and string out, and json.Unmarshal never retains
// the data it parses.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody buffers a response body into buf, failing cleanly on
// oversize.
func readBody(buf *bytes.Buffer, r io.Reader) error {
	n, err := buf.ReadFrom(io.LimitReader(r, maxResponseBytes+1))
	if err != nil {
		return err
	}
	if n > maxResponseBytes {
		return ErrResponseTooLarge
	}
	return nil
}

func (t *HTTP) decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		// Round-trip the server's typed rejection so errors.Is sees the
		// same sentinel either transport would surface (the retry
		// layer's retryable/terminal split depends on it).
		if base := webserver.ErrorFromCode(resp.Header.Get(webserver.ErrorHeader)); base != nil {
			return fmt.Errorf("device: server returned %s: %w", resp.Status, base)
		}
		return fmt.Errorf("device: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	// Parse the media type properly: a parameterized
	// "application/octet-stream; charset=..." must still select the
	// binary decoder, not fall through to JSON.
	ct, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer respBufPool.Put(buf)
	if err := readBody(buf, resp.Body); err != nil {
		return err
	}
	data := buf.Bytes()
	if ct == binaryMIME {
		msg, err := protocol.DecodeBinary(data)
		if err != nil {
			return err
		}
		switch d := out.(type) {
		case *protocol.RegistrationPage:
			if m, ok := msg.(*protocol.RegistrationPage); ok {
				*d = *m
				return nil
			}
		case *protocol.LoginPage:
			if m, ok := msg.(*protocol.LoginPage); ok {
				*d = *m
				return nil
			}
		case *protocol.ContentPage:
			if m, ok := msg.(*protocol.ContentPage); ok {
				*d = *m
				return nil
			}
		}
		return fmt.Errorf("device: binary response has unexpected type %T", msg)
	}
	return json.Unmarshal(data, out)
}

// FetchRegistrationPage implements Transport.
func (t *HTTP) FetchRegistrationPage(now time.Duration) (*protocol.RegistrationPage, error) {
	var page protocol.RegistrationPage
	if err := t.get("/trust/register", now, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// SubmitRegistration implements Transport.
func (t *HTTP) SubmitRegistration(now time.Duration, sub *protocol.RegistrationSubmit, recovery string) (protocol.RegistrationResult, error) {
	var res protocol.RegistrationResult
	err := t.post("/trust/register", now, url.Values{"recovery": {recovery}}, sub, &res)
	return res, err
}

// FetchLoginPage implements Transport.
func (t *HTTP) FetchLoginPage(now time.Duration) (*protocol.LoginPage, error) {
	var page protocol.LoginPage
	if err := t.get("/trust/login", now, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// SubmitLogin implements Transport.
func (t *HTTP) SubmitLogin(now time.Duration, sub *protocol.LoginSubmit) (*protocol.ContentPage, error) {
	var cp protocol.ContentPage
	if err := t.post("/trust/login", now, nil, sub, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// SubmitResume implements Transport.
func (t *HTTP) SubmitResume(now time.Duration, sub *protocol.ResumeSubmit) (*protocol.ContentPage, error) {
	var cp protocol.ContentPage
	if err := t.post("/trust/resume", now, nil, sub, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// SubmitPageRequest implements Transport.
func (t *HTTP) SubmitPageRequest(now time.Duration, req *protocol.PageRequest) (*protocol.ContentPage, error) {
	var cp protocol.ContentPage
	if err := t.post("/trust/page", now, nil, req, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// SubmitResync implements Transport.
func (t *HTTP) SubmitResync(now time.Duration, req *protocol.ResyncRequest) (*protocol.ContentPage, error) {
	var cp protocol.ContentPage
	if err := t.post("/trust/resync", now, nil, req, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}
