package device

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"time"

	"trust/internal/protocol"
	"trust/internal/webserver"
)

// HTTP is the Transport implementation speaking to a webserver.Handler
// over real sockets.
type HTTP struct {
	BaseURL string
	Client  *http.Client
	// Binary selects the compact binary codec (application/octet-
	// stream) instead of JSON on every request and response.
	Binary bool
}

const binaryMIME = "application/octet-stream"

var _ Transport = (*HTTP)(nil)

func (t *HTTP) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTP) get(path string, now time.Duration, out any) error {
	u := fmt.Sprintf("%s%s?now=%d", t.BaseURL, path, int64(now))
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if t.Binary {
		req.Header.Set("Accept", binaryMIME)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		// Socket-level failures are the retryable class: the request may
		// or may not have reached the server (see retry.go).
		return fmt.Errorf("%w: GET %s: %v", ErrNetwork, path, err)
	}
	defer resp.Body.Close()
	return t.decodeResponse(resp, out)
}

func (t *HTTP) post(path string, now time.Duration, extra url.Values, in, out any) error {
	var body []byte
	contentType := "application/json"
	var err error
	if t.Binary {
		body, err = protocol.EncodeBinary(in)
		contentType = binaryMIME
	} else {
		body, err = json.Marshal(in)
	}
	if err != nil {
		return err
	}
	q := url.Values{"now": {fmt.Sprint(int64(now))}}
	for k, vs := range extra {
		q[k] = vs
	}
	u := fmt.Sprintf("%s%s?%s", t.BaseURL, path, q.Encode())
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	if t.Binary {
		req.Header.Set("Accept", binaryMIME)
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return fmt.Errorf("%w: POST %s: %v", ErrNetwork, path, err)
	}
	defer resp.Body.Close()
	return t.decodeResponse(resp, out)
}

// maxResponseBytes caps how much of a server response the device will
// buffer. Oversized bodies are rejected with ErrResponseTooLarge
// instead of being silently truncated into a confusing decode error.
const maxResponseBytes = 1 << 20

// ErrResponseTooLarge reports a response body over maxResponseBytes.
var ErrResponseTooLarge = fmt.Errorf("device: response body exceeds %d-byte cap", maxResponseBytes)

// readBody buffers a response body, failing cleanly on oversize.
func readBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxResponseBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxResponseBytes {
		return nil, ErrResponseTooLarge
	}
	return data, nil
}

func (t *HTTP) decodeResponse(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		// Round-trip the server's typed rejection so errors.Is sees the
		// same sentinel either transport would surface (the retry
		// layer's retryable/terminal split depends on it).
		if base := webserver.ErrorFromCode(resp.Header.Get(webserver.ErrorHeader)); base != nil {
			return fmt.Errorf("device: server returned %s: %w", resp.Status, base)
		}
		return fmt.Errorf("device: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	// Parse the media type properly: a parameterized
	// "application/octet-stream; charset=..." must still select the
	// binary decoder, not fall through to JSON.
	ct, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if ct == binaryMIME {
		data, err := readBody(resp.Body)
		if err != nil {
			return err
		}
		msg, err := protocol.DecodeBinary(data)
		if err != nil {
			return err
		}
		switch d := out.(type) {
		case *protocol.RegistrationPage:
			if m, ok := msg.(*protocol.RegistrationPage); ok {
				*d = *m
				return nil
			}
		case *protocol.LoginPage:
			if m, ok := msg.(*protocol.LoginPage); ok {
				*d = *m
				return nil
			}
		case *protocol.ContentPage:
			if m, ok := msg.(*protocol.ContentPage); ok {
				*d = *m
				return nil
			}
		}
		return fmt.Errorf("device: binary response has unexpected type %T", msg)
	}
	data, err := readBody(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}

// FetchRegistrationPage implements Transport.
func (t *HTTP) FetchRegistrationPage(now time.Duration) (*protocol.RegistrationPage, error) {
	var page protocol.RegistrationPage
	if err := t.get("/trust/register", now, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// SubmitRegistration implements Transport.
func (t *HTTP) SubmitRegistration(now time.Duration, sub *protocol.RegistrationSubmit, recovery string) (protocol.RegistrationResult, error) {
	var res protocol.RegistrationResult
	err := t.post("/trust/register", now, url.Values{"recovery": {recovery}}, sub, &res)
	return res, err
}

// FetchLoginPage implements Transport.
func (t *HTTP) FetchLoginPage(now time.Duration) (*protocol.LoginPage, error) {
	var page protocol.LoginPage
	if err := t.get("/trust/login", now, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// SubmitLogin implements Transport.
func (t *HTTP) SubmitLogin(now time.Duration, sub *protocol.LoginSubmit) (*protocol.ContentPage, error) {
	var cp protocol.ContentPage
	if err := t.post("/trust/login", now, nil, sub, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// SubmitPageRequest implements Transport.
func (t *HTTP) SubmitPageRequest(now time.Duration, req *protocol.PageRequest) (*protocol.ContentPage, error) {
	var cp protocol.ContentPage
	if err := t.post("/trust/page", now, nil, req, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}

// SubmitResync implements Transport.
func (t *HTTP) SubmitResync(now time.Duration, req *protocol.ResyncRequest) (*protocol.ContentPage, error) {
	var cp protocol.ContentPage
	if err := t.post("/trust/resync", now, nil, req, &cp); err != nil {
		return nil, err
	}
	return &cp, nil
}
