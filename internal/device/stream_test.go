package device

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trust/internal/fingerprint"
	"trust/internal/flock"
	"trust/internal/frame"
	"trust/internal/geom"
	"trust/internal/pki"
	"trust/internal/placement"
	"trust/internal/protocol"
	"trust/internal/sim"
	"trust/internal/webserver"
)

// newStreamFixture builds a device on the streamed transport: every
// dial opens a net.Pipe with a server read loop on the far end.
// wrapDial, when non-nil, interposes on the dial function (fault
// injection, dial failure).
func newStreamFixture(t *testing.T, wrapDial func(func() (io.ReadWriteCloser, error)) func() (io.ReadWriteCloser, error)) (*fixture, *Stream) {
	t.Helper()
	ca, err := pki.NewCA("trust-root", pki.NewDeterministicRand(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := webserver.New("www.xyz.com", ca, 7)
	if err != nil {
		t.Fatal(err)
	}
	pl := placement.Placement{Sensors: []geom.Rect{geom.RectWH(180, 660, 120, 120)}}
	mod, err := flock.New(flock.DefaultConfig(pl), ca, "device-1", 99)
	if err != nil {
		t.Fatal(err)
	}
	f := fingerprint.Synthesize(4242, fingerprint.Loop)
	if err := mod.Enroll(fingerprint.NewTemplate(f)); err != nil {
		t.Fatal(err)
	}
	dial := func() (io.ReadWriteCloser, error) {
		c1, c2 := net.Pipe()
		go srv.ServeStream(c2)
		return c1, nil
	}
	if wrapDial != nil {
		dial = wrapDial(dial)
	}
	tr := &Stream{Dial: dial, Fallback: &InMemory{Server: srv}}
	dev := New("phone", mod, tr)
	return &fixture{ca: ca, server: srv, dev: dev, finger: f}, tr
}

func TestStreamBrowseEndToEnd(t *testing.T) {
	fx, tr := newStreamFixture(t, nil)
	fx.registerAndLogin(t)
	if !tr.Streaming() {
		t.Fatal("transport not streaming after login")
	}
	accepted := fx.server.AcceptedRequests()
	for _, action := range []string{"view-statement", "home", "view-statement"} {
		fx.touchOwner(t)
		if err := fx.dev.Browse(fx.now, action); err != nil {
			t.Fatalf("browse %s: %v", action, err)
		}
	}
	if got := fx.server.AcceptedRequests() - accepted; got != 3 {
		t.Fatalf("server accepted %d streamed requests, want 3", got)
	}
	if st := tr.Stats(); st.Dials != 1 || st.Redials != 0 || st.Downgrades != 0 {
		t.Fatalf("unexpected stream stats %+v", st)
	}
	if report := fx.server.RunAudit(); report.Tampered != 0 {
		t.Fatalf("streamed browsing flagged by audit: %d of %d", report.Tampered, report.Checked)
	}
	if n := fx.server.StreamCount(); n != 1 {
		t.Fatalf("server tracks %d streams, want 1", n)
	}
}

func TestStreamBatchPipelinesRequests(t *testing.T) {
	fx, tr := newStreamFixture(t, nil)
	fx.registerAndLogin(t)
	fx.touchOwner(t)
	accepted := fx.server.AcceptedRequests()
	if err := fx.dev.BrowseBatch(fx.now, []string{"view-statement", "home", "view-statement", "home"}); err != nil {
		t.Fatalf("browse batch: %v", err)
	}
	if got := fx.server.AcceptedRequests() - accepted; got != 4 {
		t.Fatalf("server accepted %d of the batch, want 4", got)
	}
	if !tr.Streaming() {
		t.Fatal("stream died during batch")
	}
	// The session nonce advanced 4 chain steps; an ordinary browse on
	// the same stream must still line up.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "home"); err != nil {
		t.Fatalf("browse after batch: %v", err)
	}
}

func TestStreamBadNonceRecoversViaStreamResync(t *testing.T) {
	fx, _ := newStreamFixture(t, nil)
	fx.registerAndLogin(t)
	fx.dev.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond}, sim.NewRNG(5))
	// Simulate a lost response: the device's nonce is behind the chain.
	fx.dev.Session().LastNonce = "stale-nonce"
	fx.touchOwner(t)
	if _, err := fx.dev.BrowseResilient(fx.now, "view-statement"); err != nil {
		t.Fatalf("browse with stale nonce: %v", err)
	}
	if fx.dev.Degraded() {
		t.Fatal("device degraded instead of resyncing over the stream")
	}
	// Recovered: subsequent streamed browsing works.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "home"); err != nil {
		t.Fatalf("browse after resync: %v", err)
	}
}

func TestStreamPolicyPushReachesDevice(t *testing.T) {
	fx, tr := newStreamFixture(t, nil)
	var got atomic.Int64
	tr.OnPolicy = func(window, minVerified int) {
		got.Store(int64(window)<<16 | int64(minVerified))
	}
	fx.registerAndLogin(t)
	fx.server.SetRiskPolicy(webserver.RiskPolicy{Window: 8, MinVerified: 3})
	// The push is written synchronously by SetRiskPolicy but consumed by
	// the reader goroutine; a heartbeat round trip flushes behind it.
	if err := tr.Ping(fx.now); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if v := got.Load(); v != 8<<16|3 {
		t.Fatalf("policy push not observed: got %#x", v)
	}
	// The tightened policy applies to streamed requests immediately.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "home"); err != nil {
		t.Fatalf("browse under pushed policy: %v", err)
	}
}

func TestStreamDialFailureDowngradesToFallback(t *testing.T) {
	fx, tr := newStreamFixture(t, func(func() (io.ReadWriteCloser, error)) func() (io.ReadWriteCloser, error) {
		return func() (io.ReadWriteCloser, error) { return nil, errors.New("no route") }
	})
	fx.registerAndLogin(t)
	if tr.Streaming() {
		t.Fatal("transport claims to stream with a dead dialer")
	}
	if st := tr.Stats(); st.Downgrades == 0 {
		t.Fatalf("no downgrade recorded: %+v", st)
	}
	// Fallback carries the session transparently.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "view-statement"); err != nil {
		t.Fatalf("browse over fallback: %v", err)
	}
}

func TestStreamReconnectAfterClose(t *testing.T) {
	fx, tr := newStreamFixture(t, nil)
	fx.registerAndLogin(t)
	fx.dev.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond}, sim.NewRNG(5))
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if tr.Streaming() {
		t.Fatal("stream alive after Close")
	}
	// The next browse redials, re-binds, and — because the hello reset
	// the nonce chain — recovers through the resync path.
	fx.touchOwner(t)
	if _, err := fx.dev.BrowseResilient(fx.now, "view-statement"); err != nil {
		t.Fatalf("browse after close: %v", err)
	}
	if !tr.Streaming() {
		t.Fatal("stream not re-established")
	}
	if st := tr.Stats(); st.Dials != 2 {
		t.Fatalf("expected a redial, stats %+v", st)
	}
}

func TestStreamSurvivesMidFrameCut(t *testing.T) {
	rng := sim.NewRNG(77)
	var fd *FaultyDialer
	fx, tr := newStreamFixture(t, func(dial func() (io.ReadWriteCloser, error)) func() (io.ReadWriteCloser, error) {
		fd = NewFaultyDialer(dial, StreamFaultProfile{}, rng)
		return fd.Dial
	})
	fx.registerAndLogin(t)
	fx.dev.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond}, sim.NewRNG(5))
	fx.touchOwner(t)

	// Two rounds of: arm the cut (every post-handshake write is cut
	// mid-frame), watch a plain browse die retryably, then disarm and
	// let the resilient flow redial and recover through resync.
	for round := 0; round < 2; round++ {
		fd.Profile = StreamFaultProfile{CutRate: 1, HandshakeGrace: 1}
		err := fx.dev.Browse(fx.now, "view-statement")
		if !errors.Is(err, ErrNetwork) {
			t.Fatalf("round %d: cut browse returned %v, want ErrNetwork", round, err)
		}
		fd.Profile = StreamFaultProfile{}
		if _, err := fx.dev.BrowseResilient(fx.now, "view-statement"); err != nil {
			t.Fatalf("round %d: recovery browse: %v", round, err)
		}
		if fx.dev.Degraded() {
			t.Fatalf("round %d: device degraded despite retry budget", round)
		}
	}
	if fd.Stats.Cuts != 2 {
		t.Fatalf("injected %d cuts, want 2", fd.Stats.Cuts)
	}
	if st := tr.Stats(); st.Dials < 3 {
		t.Fatalf("expected a redial per cut, stats %+v", st)
	}
	// The server never half-applied anything: the session still lines
	// up for ordinary streamed browsing.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "home"); err != nil {
		t.Fatalf("browse after recovery: %v", err)
	}
}

func TestStreamTornWritesReassemble(t *testing.T) {
	rng := sim.NewRNG(78)
	var fd *FaultyDialer
	fx, _ := newStreamFixture(t, func(dial func() (io.ReadWriteCloser, error)) func() (io.ReadWriteCloser, error) {
		fd = NewFaultyDialer(dial, StreamFaultProfile{}, rng)
		return fd.Dial
	})
	fx.registerAndLogin(t)
	fd.Profile = StreamFaultProfile{TearRate: 1, HandshakeGrace: 1}
	for i := 0; i < 5; i++ {
		fx.touchOwner(t)
		if err := fx.dev.Browse(fx.now, "home"); err != nil {
			t.Fatalf("browse %d under torn writes: %v", i, err)
		}
	}
	if fd.Stats.Tears == 0 {
		t.Fatal("no tears injected")
	}
}

// fakeStreamServer speaks the server side of the framing by hand so
// tests can deliver adversarial frame sequences the real server never
// produces.
type fakeStreamServer struct {
	conn io.ReadWriteCloser
	sess *protocol.Session
	seed []byte
}

func startFakeStreamServer(t *testing.T, sess *protocol.Session) (*Stream, *fakeStreamServer) {
	t.Helper()
	fs := &fakeStreamServer{sess: sess, seed: []byte("fake-seed-0123456")}
	tr := &Stream{Dial: func() (io.ReadWriteCloser, error) {
		c1, c2 := net.Pipe()
		fs.conn = c2
		go fs.handshake(t)
		return c1, nil
	}}
	tr.BindSession(sess)
	return tr, fs
}

func (fs *fakeStreamServer) handshake(t *testing.T) {
	ft, _, err := protocol.ReadFrame(fs.conn)
	if err != nil || ft != protocol.FrameHello {
		t.Errorf("fake server: hello: %v (%v)", ft, err)
		return
	}
	w := &protocol.StreamWelcome{Domain: fs.sess.Domain, SessionID: fs.sess.ID, NonceSeed: fs.seed, Window: 12, MinVerified: 2}
	w.MAC = pki.MAC(fs.sess.Key, w.MACBytes())
	payload, err := protocol.EncodeBinary(w)
	if err != nil {
		t.Errorf("fake server: encode welcome: %v", err)
		return
	}
	if err := protocol.WriteFrame(fs.conn, protocol.FrameWelcome, payload); err != nil {
		t.Errorf("fake server: write welcome: %v", err)
	}
}

// testPage is the page the fake server serves.
var testPage = frame.Page{URL: "https://www.xyz.com/fake", Title: "fake", Body: "fake", HeightPX: 800}

// page fabricates a MAC-valid content page for the fake server.
func (fs *fakeStreamServer) page(nonce protocol.Nonce) *protocol.ContentPage {
	cp := &protocol.ContentPage{
		Domain:    fs.sess.Domain,
		SessionID: fs.sess.ID,
		Nonce:     nonce,
		Account:   fs.sess.Account,
		Page:      &testPage,
	}
	cp.MAC = pki.MAC(fs.sess.Key, cp.MACBytes())
	return cp
}

func fakeSession() *protocol.Session {
	key := make([]byte, pki.SessionKeySize)
	for i := range key {
		key[i] = byte(i * 7)
	}
	return &protocol.Session{Domain: "www.xyz.com", Account: "acct", ID: "sess-1", Key: key}
}

func fakeRequest(sess *protocol.Session) *protocol.PageRequest {
	req := &protocol.PageRequest{Domain: sess.Domain, Account: sess.Account, SessionID: sess.ID, Nonce: sess.LastNonce, Action: "home"}
	req.MAC = pki.MAC(sess.Key, req.MACBytes())
	return req
}

func TestStreamReorderedResponseKillsConnection(t *testing.T) {
	sess := fakeSession()
	tr, fs := startFakeStreamServer(t, sess)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ft, _, err := protocol.ReadFrame(fs.conn)
		if err != nil || ft != protocol.FrameTouchBatch {
			t.Errorf("fake server: batch: %v (%v)", ft, err)
			return
		}
		// Answer with a page whose sequence belongs to a different
		// request frame — what a reordered or replayed response looks
		// like on the wire.
		payload, err := protocol.EncodePageFrame(999, 0, fs.page(protocol.StreamNonce(sess.Key, fs.seed, 1)))
		if err != nil {
			t.Errorf("fake server: encode page: %v", err)
			return
		}
		protocol.WriteFrame(fs.conn, protocol.FramePage, payload)
	}()
	_, err := tr.SubmitPageRequest(0, fakeRequest(sess))
	<-done
	if err == nil {
		t.Fatal("reordered response accepted")
	}
	if !errors.Is(err, ErrNetwork) {
		t.Fatalf("reorder produced %v, want retryable ErrNetwork", err)
	}
	if tr.Streaming() {
		t.Fatal("connection survived a correlation violation")
	}
}

func TestStreamDuplicateResponseKillsConnection(t *testing.T) {
	sess := fakeSession()
	tr, fs := startFakeStreamServer(t, sess)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ft, payload, err := protocol.ReadFrame(fs.conn)
		if err != nil || ft != protocol.FrameTouchBatch {
			t.Errorf("fake server: batch: %v (%v)", ft, err)
			return
		}
		tb, err := protocol.DecodeTouchBatch(payload)
		if err != nil {
			t.Errorf("fake server: decode batch: %v", err)
			return
		}
		pf, err := protocol.EncodePageFrame(tb.Seq, 0, fs.page(protocol.StreamNonce(sess.Key, fs.seed, 1)))
		if err != nil {
			t.Errorf("fake server: encode page: %v", err)
			return
		}
		// Deliver the same response twice (duplicated frame in transit).
		protocol.WriteFrame(fs.conn, protocol.FramePage, pf)
		protocol.WriteFrame(fs.conn, protocol.FramePage, pf)
	}()
	cp, err := tr.SubmitPageRequest(0, fakeRequest(sess))
	if err != nil || cp == nil {
		t.Fatalf("first delivery failed: %v", err)
	}
	<-done
	// The duplicate is unsolicited: the reader must kill the connection
	// rather than hold a response no request matches. The kill closes
	// the pipe, which surfaces deterministically as a read error on the
	// server end (a surviving connection would block this read until
	// the test times out).
	if _, err := fs.conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("client wrote instead of killing the connection")
	}
	if tr.Streaming() {
		t.Fatal("connection survived a duplicated response frame")
	}
}

// TestStreamConcurrentWritersRace exercises the stream under -race:
// heartbeats, server policy pushes, and browsing all in flight at
// once, then teardown with a ping mid-air.
func TestStreamConcurrentWritersRace(t *testing.T) {
	fx, tr := newStreamFixture(t, nil)
	var pushes atomic.Int64
	tr.OnPolicy = func(window, minVerified int) { pushes.Add(1) }
	fx.registerAndLogin(t)
	fx.touchOwner(t)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // heartbeat writer racing the batching writer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tr.Ping(fx.now)
			}
		}
	}()
	wg.Add(1)
	go func() { // server-initiated pushes racing client requests
		defer wg.Done()
		for i := 0; i < 50; i++ {
			fx.server.SetRiskPolicy(webserver.RiskPolicy{Window: 12, MinVerified: 1 + i%2})
		}
	}()
	for i := 0; i < 30; i++ {
		if err := fx.dev.Browse(fx.now, "home"); err != nil {
			t.Fatalf("browse %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	// Teardown with a final ping racing the close.
	wg.Add(1)
	go func() { defer wg.Done(); _ = tr.Ping(fx.now) }()
	_ = tr.Close()
	wg.Wait()
}

// serverMetric reads one named counter from the server's telemetry
// schema.
func serverMetric(t *testing.T, srv *webserver.Server, name string) int64 {
	t.Helper()
	for i, n := range srv.MetricsSchema() {
		if n == name {
			return srv.AppendMetrics(nil)[i]
		}
	}
	t.Fatalf("metric %q not in schema", name)
	return 0
}

// TestStreamHeartbeatWarpDetectedAndRecovered drives a backwards
// heartbeat through the fault profile: the wire rewrites the device's
// heartbeat timestamp an hour into the past. The server must clamp —
// count it, hold session time — and echo the warped value verbatim,
// which is exactly what lets the device catch the tampering as an echo
// mismatch, kill the connection, and recover on redial.
func TestStreamHeartbeatWarpDetectedAndRecovered(t *testing.T) {
	var fd *FaultyDialer
	fx, tr := newStreamFixture(t, func(dial func() (io.ReadWriteCloser, error)) func() (io.ReadWriteCloser, error) {
		fd = NewFaultyDialer(dial, StreamFaultProfile{}, sim.NewRNG(11))
		return fd.Dial
	})
	fx.registerAndLogin(t)
	// A browse stamps the connection's session time, arming the
	// server's monotonicity clamp for anything earlier.
	fx.touchOwner(t)
	if err := fx.dev.Browse(fx.now, "home"); err != nil {
		t.Fatal(err)
	}

	fd.Profile.HeartbeatWarp = time.Hour
	err := tr.Ping(fx.now)
	if err == nil {
		t.Fatal("warped heartbeat echo went undetected")
	}
	if fd.Stats.Warps != 1 {
		t.Fatalf("injected %d warps, want 1", fd.Stats.Warps)
	}
	if got := serverMetric(t, fx.server, "hb_clamped"); got != 1 {
		t.Fatalf("hb_clamped = %d, want 1", got)
	}
	if got := serverMetric(t, fx.server, "hb_rejected"); got != 0 {
		t.Fatalf("hb_rejected = %d, want 0", got)
	}

	// The poisoned connection is down; with the fault cleared the
	// resilient path redials, resyncs onto the fresh nonce chain, and
	// the session carries on.
	fd.Profile.HeartbeatWarp = 0
	fx.dev.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond}, sim.NewRNG(5))
	fx.touchOwner(t)
	if _, err := fx.dev.BrowseResilient(fx.now, "home"); err != nil {
		t.Fatalf("browse after warp teardown: %v", err)
	}
	if fx.dev.Degraded() {
		t.Fatal("device degraded instead of redialing")
	}
	if st := tr.Stats(); st.Redials == 0 || st.Downgrades != 0 {
		t.Fatalf("stream stats %+v, want a redial and no downgrade", st)
	}
}
