package device

import (
	"errors"
	"fmt"
	"time"

	"trust/internal/pki"
	"trust/internal/sim"
	"trust/internal/webserver"
)

// RetryPolicy drives the *Resilient flows: capped exponential backoff
// with deterministic jitter, all in virtual time.
type RetryPolicy struct {
	// MaxAttempts is the total number of deliveries tried, including
	// the first. 1 means fail-fast; 0 is treated as 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
	// JitterFrac spreads each backoff uniformly over ±JitterFrac of its
	// nominal value, drawn from the device's retry RNG (deterministic,
	// but decorrelated across devices so a fleet doesn't retry in
	// lockstep).
	JitterFrac float64
}

// DefaultRetryPolicy is a sane interactive policy: four tries, 50 ms
// base, 800 ms cap, ±20 % jitter — worst case ~2 s of virtual waiting,
// far inside the module's 30 s touch-authorization window so retries
// can still re-sign.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 800 * time.Millisecond, JitterFrac: 0.2}
}

// Retryable reports whether err is worth redelivering: only the
// network-fault class is — the request may never have reached the
// server. Typed server rejections are deliberate verdicts; retrying
// them verbatim can only burn the failure budget (ErrBadNonce gets its
// own resync path instead, see BrowseResilient).
func Retryable(err error) bool { return errors.Is(err, ErrNetwork) }

// attempts returns the effective total attempt count.
func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before attempt+1 (attempt counts completed
// tries, starting at 1).
func (p *RetryPolicy) backoff(attempt int, rng *sim.RNG) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.JitterFrac > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 + p.JitterFrac*(2*rng.Float64()-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// SetRetryPolicy arms the *Resilient flows. rng supplies backoff
// jitter and may be nil (no jitter).
func (d *Device) SetRetryPolicy(p RetryPolicy, rng *sim.RNG) {
	d.Retry = &p
	d.retryRNG = rng
}

// Degraded reports whether the device is in the paper's local fallback
// mode: the server became unreachable, so pages are served from the
// local cache under the module's local continuous authentication until
// a server round-trip succeeds again.
func (d *Device) Degraded() bool { return d.degraded }

// Resync recovers a session whose nonce echo was lost: it asks the
// server to re-serve the session's last page under a fresh nonce,
// proving session ownership with the session-key MAC alone.
func (d *Device) Resync(now time.Duration) error {
	if d.session == nil {
		return errors.New("device: no session")
	}
	d.tel.resyncs.Add(1)
	req, err := d.Client.BuildResync(d.session)
	if err != nil {
		return err
	}
	cp, err := d.transport.SubmitResync(now, req)
	if err != nil {
		return err
	}
	if err := d.Client.AcceptContentPage(d.session, cp); err != nil {
		return err
	}
	d.display(cp.Page)
	return nil
}

// LoginResilient runs the Fig 10 login under the retry policy. Each
// attempt refetches the login page (its nonce is single-use, so a
// failed submission can never be replayed verbatim). It returns the
// virtual time after all waiting, so callers keep their clock aligned
// with the backoff actually spent.
func (d *Device) LoginResilient(now time.Duration, cert *pki.Certificate, account string) (time.Duration, error) {
	var lastErr error
	attempts := d.Retry.attempts()
	for a := 1; a <= attempts; a++ {
		err := d.Login(now, cert, account)
		if err == nil {
			d.degraded = false
			return now, nil
		}
		lastErr = err
		if !Retryable(err) || a == attempts {
			break
		}
		d.tel.retries.Add(1)
		now += d.Retry.backoff(a, d.retryRNG)
	}
	return now, fmt.Errorf("device: login failed after retries: %w", lastErr)
}

// LoginResumeResilient is LoginResilient for the resume-first login:
// each attempt runs LoginResume, which itself falls back from the
// ticket path to the full cold path, so a retryable error here means
// both paths died on network faults. The ticket is dropped on the
// first in-attempt failure, so later attempts are pure full logins —
// deterministic, at worst one wasted ticket.
func (d *Device) LoginResumeResilient(now time.Duration, cert *pki.Certificate, account string) (time.Duration, error) {
	var lastErr error
	attempts := d.Retry.attempts()
	for a := 1; a <= attempts; a++ {
		err := d.LoginResume(now, cert, account)
		if err == nil {
			d.degraded = false
			return now, nil
		}
		lastErr = err
		if !Retryable(err) || a == attempts {
			break
		}
		d.tel.retries.Add(1)
		now += d.Retry.backoff(a, d.retryRNG)
	}
	return now, fmt.Errorf("device: login failed after retries: %w", lastErr)
}

// BrowseResilient issues one continuous-auth page request under the
// retry policy, handling each fault class by type:
//
//   - network faults: back off and redeliver;
//   - bad nonce: the previous response was lost AFTER the server
//     applied the action and rotated past us — resync recovers the
//     served page, completing the interaction;
//   - anything else: a deliberate server verdict, returned as is.
//
// If every attempt dies on network faults the device degrades
// gracefully: when the module's local continuous authentication still
// holds, it re-displays the cached page, marks itself Degraded, and
// reports success — the paper's offline fallback. The next successful
// server round-trip clears the flag.
func (d *Device) BrowseResilient(now time.Duration, action string) (time.Duration, error) {
	if d.session == nil {
		return now, errors.New("device: no session")
	}
	var lastErr error
	attempts := d.Retry.attempts()
	for a := 1; a <= attempts; a++ {
		err := d.Browse(now, action)
		if err == nil {
			d.degraded = false
			return now, nil
		}
		if errors.Is(err, webserver.ErrBadNonce) {
			// The only way the device's nonce goes stale mid-session is
			// a dropped response: the server already served this action.
			// Resync fetches that page under a fresh nonce.
			err = d.Resync(now)
			if err == nil {
				d.degraded = false
				return now, nil
			}
		}
		lastErr = err
		if !Retryable(err) {
			return now, err
		}
		if a < attempts {
			d.tel.retries.Add(1)
			now += d.Retry.backoff(a, d.retryRNG)
		}
	}
	// Retries exhausted on network faults: the server is unreachable.
	// Fall back to local mode if the module still vouches for the user.
	if d.current != nil && d.Module.TouchAuthorized(now) {
		d.display(d.current)
		d.degraded = true
		d.tel.degradedEnters.Add(1)
		return now, nil
	}
	return now, fmt.Errorf("device: server unreachable and no local fallback: %w", lastErr)
}
