package fuzzyvault

import (
	"testing"
	"testing/quick"

	"trust/internal/fingerprint"
	"trust/internal/geom"
	"trust/internal/sim"
)

func TestGFFieldAxioms(t *testing.T) {
	if err := quick.Check(func(a, b, c uint16) bool {
		x, y, z := Elem(a), Elem(b), Elem(c)
		// Commutativity and associativity of Mul; distributivity.
		if Mul(x, y) != Mul(y, x) {
			return false
		}
		if Mul(Mul(x, y), z) != Mul(x, Mul(y, z)) {
			return false
		}
		if Mul(x, Add(y, z)) != Add(Mul(x, y), Mul(x, z)) {
			return false
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFInverse(t *testing.T) {
	if err := quick.Check(func(a uint16) bool {
		if a == 0 {
			return true
		}
		x := Elem(a)
		return Mul(x, Inv(x)) == 1
	}, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestInterpolateRecoversPolynomial(t *testing.T) {
	rng := sim.NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(10)
		poly := make(Poly, k)
		for i := range poly {
			poly[i] = Elem(rng.Uint64())
		}
		xs := make([]Elem, k)
		ys := make([]Elem, k)
		seen := map[Elem]bool{}
		for i := 0; i < k; {
			x := Elem(rng.Uint64())
			if seen[x] {
				continue
			}
			seen[x] = true
			xs[i] = x
			ys[i] = poly.Eval(x)
			i++
		}
		got := Interpolate(xs, ys)
		for i := range poly {
			if got[i] != poly[i] {
				t.Fatalf("trial %d: coefficient %d: got %v want %v", trial, i, got[i], poly[i])
			}
		}
	}
}

func TestInterpolateDuplicateXPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate x did not panic")
		}
	}()
	Interpolate([]Elem{1, 1}, []Elem{2, 3})
}

// alignedProbe returns the finger's minutiae with small sensing noise,
// in the finger frame (the oracle-aligned case). A positive radius
// keeps only minutiae within a contact patch around center — pass a
// jittered center to model where touches actually land.
func alignedProbe(f *fingerprint.Finger, rng *sim.RNG, center geom.Point, radius float64) []fingerprint.Minutia {
	var out []fingerprint.Minutia
	for _, m := range f.Minutiae() {
		if radius > 0 && m.Pos.Dist(center) > radius {
			continue
		}
		m.Pos.X += rng.Normal(0, 0.12)
		m.Pos.Y += rng.Normal(0, 0.12)
		m.Angle += rng.Normal(0, 0.05)
		out = append(out, m)
	}
	return out
}

// touchCenter draws a realistic contact centre: touches land all over
// the fingertip, not at its exact centre.
func touchCenter(f *fingerprint.Finger, rng *sim.RNG) geom.Point {
	c := f.Bounds().Center()
	return geom.Point{X: c.X + rng.Normal(0, 3), Y: c.Y + rng.Normal(0, 3.5)}
}

func lockedVault(t *testing.T, f *fingerprint.Finger, rng *sim.RNG) (*Vault, []Elem) {
	t.Helper()
	p := DefaultParams()
	secret := make([]Elem, p.SecretLen())
	for i := range secret {
		secret[i] = Elem(rng.Uint64())
	}
	v, err := Lock(fingerprint.NewTemplate(f), secret, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	return v, secret
}

func TestVaultUnlocksWithGenuineFullPrint(t *testing.T) {
	rng := sim.NewRNG(2)
	success := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		f := fingerprint.Synthesize(uint64(100+i), fingerprint.Loop)
		v, secret := lockedVault(t, f, rng)
		got, ok := v.Unlock(alignedProbe(f, rng, f.Bounds().Center(), 0), DefaultParams(), rng)
		if !ok {
			continue
		}
		match := true
		for j := range secret {
			if got[j] != secret[j] {
				match = false
			}
		}
		if !match {
			t.Fatal("unlocked with a WRONG secret (CRC collision?)")
		}
		success++
	}
	// The published implementations report ~90% genuine accept on full
	// prints; require at least 7/10 here.
	if success < 7 {
		t.Fatalf("full-print unlock succeeded only %d/%d", success, trials)
	}
}

func TestVaultImpostorFAR(t *testing.T) {
	// The vault checks a bag of points with NO global geometric
	// consistency, so impostors whose minutia angles cluster like the
	// enrolled finger's occasionally decode — a documented weakness of
	// the construction, and part of why the paper rejects it. Bound the
	// false-accept rate rather than demanding zero.
	rng := sim.NewRNG(3)
	unlocks := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		enrolled := fingerprint.Synthesize(uint64(200+i), fingerprint.Loop)
		impostor := fingerprint.Synthesize(uint64(900+i), fingerprint.Whorl)
		v, _ := lockedVault(t, enrolled, rng)
		if _, ok := v.Unlock(alignedProbe(impostor, rng, impostor.Bounds().Center(), 0), DefaultParams(), rng); ok {
			unlocks++
		}
	}
	if unlocks > 2 {
		t.Fatalf("impostors unlocked the vault %d/%d times", unlocks, trials)
	}
}

func TestVaultFailsOnUnalignedCapture(t *testing.T) {
	// The realistic opportunistic case: capture-frame minutiae carry an
	// unknown rotation/translation. The vault has no alignment search,
	// so unlocking must fail — the paper's second objection.
	rng := sim.NewRNG(4)
	f := fingerprint.Synthesize(300, fingerprint.Loop)
	v, _ := lockedVault(t, f, rng)
	c := fingerprint.Contact{
		Center: geom.Point{X: 8, Y: 10}, Radius: 4.2, Pressure: 0.8, SpeedMMS: 1, Rotation: 0.3,
	}
	unlocks := 0
	for i := 0; i < 5; i++ {
		cap := fingerprint.Acquire(f, c, rng)
		if _, ok := v.Unlock(cap.Minutiae, DefaultParams(), rng); ok {
			unlocks++
		}
	}
	if unlocks > 0 {
		t.Fatalf("unaligned captures unlocked the vault %d/5 times", unlocks)
	}
}

func TestVaultDegradesOnPartialCaptures(t *testing.T) {
	// Even with ORACLE alignment, a 4.2 mm partial patch rarely holds
	// the 9+ tolerant matches decoding needs.
	rng := sim.NewRNG(5)
	full, partial := 0, 0
	const trials = 8
	for i := 0; i < trials; i++ {
		f := fingerprint.Synthesize(uint64(400+i), fingerprint.Loop)
		v, _ := lockedVault(t, f, rng)
		if _, ok := v.Unlock(alignedProbe(f, rng, f.Bounds().Center(), 0), DefaultParams(), rng); ok {
			full++
		}
		if _, ok := v.Unlock(alignedProbe(f, rng, touchCenter(f, rng), 4.2), DefaultParams(), rng); ok {
			partial++
		}
	}
	if partial >= full {
		t.Fatalf("partial captures unlocked as often as full prints (%d vs %d)", partial, full)
	}
}

func TestLockValidatesInput(t *testing.T) {
	rng := sim.NewRNG(6)
	f := fingerprint.Synthesize(1, fingerprint.Loop)
	p := DefaultParams()
	if _, err := Lock(fingerprint.NewTemplate(f), make([]Elem, 3), p, rng); err == nil {
		t.Fatal("wrong secret length accepted")
	}
	sparse := &fingerprint.Template{Minutiae: f.Minutiae()[:3]}
	if _, err := Lock(sparse, make([]Elem, p.SecretLen()), p, rng); err == nil {
		t.Fatal("sparse template accepted")
	}
}

func TestVaultChaffCount(t *testing.T) {
	rng := sim.NewRNG(7)
	f := fingerprint.Synthesize(8, fingerprint.Loop)
	v, _ := lockedVault(t, f, rng)
	p := DefaultParams()
	if len(v.Points) < p.Chaff {
		t.Fatalf("vault has %d points, expected >= %d chaff", len(v.Points), p.Chaff)
	}
}
