package fuzzyvault

import (
	"testing"

	"trust/internal/fingerprint"
	"trust/internal/sim"
)

func BenchmarkMul(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Mul(Elem(i), Elem(i*7+3))
	}
}

func BenchmarkInterpolate9(b *testing.B) {
	rng := sim.NewRNG(1)
	xs := make([]Elem, 9)
	ys := make([]Elem, 9)
	seen := map[Elem]bool{}
	for i := 0; i < 9; {
		x := Elem(rng.Uint64())
		if seen[x] {
			continue
		}
		seen[x] = true
		xs[i] = x
		ys[i] = Elem(rng.Uint64())
		i++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Interpolate(xs, ys)
	}
}

func BenchmarkUnlockGenuineFull(b *testing.B) {
	rng := sim.NewRNG(2)
	f := fingerprint.Synthesize(5, fingerprint.Loop)
	p := DefaultParams()
	secret := make([]Elem, p.SecretLen())
	v, err := Lock(fingerprint.NewTemplate(f), secret, p, rng)
	if err != nil {
		b.Fatal(err)
	}
	var probe []fingerprint.Minutia
	for _, m := range f.Minutiae() {
		m.Pos.X += rng.Normal(0, 0.1)
		m.Pos.Y += rng.Normal(0, 0.1)
		probe = append(probe, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := v.Unlock(probe, p, rng); !ok {
			b.Fatal("genuine unlock failed")
		}
	}
}
