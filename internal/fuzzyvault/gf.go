// Package fuzzyvault implements the fingerprint fuzzy vault of the
// paper's related work (Uludag/Pankanti/Jain [23], [14], [22]): a
// secret polynomial over GF(2^16) hidden among chaff points, unlockable
// only with a minutiae set close to the enrolled one. The paper argues
// the construction is unsuitable for continuous touch authentication —
// its ~10% full-print false-reject rate gets far worse on the small,
// unaligned partial captures opportunistic sensing delivers — and
// experiment X7 reproduces exactly that comparison against the TRUST
// matcher.
package fuzzyvault

// gfPoly is the reducing polynomial for GF(2^16):
// x^16 + x^12 + x^3 + x + 1.
const gfPoly uint32 = 0x1100B

// Elem is a GF(2^16) field element.
type Elem uint16

// Add is addition in GF(2^16) (XOR).
func Add(a, b Elem) Elem { return a ^ b }

// Mul multiplies in GF(2^16) (carry-less multiply + reduction).
func Mul(a, b Elem) Elem {
	var acc uint32
	x, y := uint32(a), uint32(b)
	for y != 0 {
		if y&1 != 0 {
			acc ^= x
		}
		x <<= 1
		if x&0x10000 != 0 {
			x ^= gfPoly
		}
		y >>= 1
	}
	return Elem(acc)
}

// Inv returns the multiplicative inverse (a^(2^16-2)); Inv(0) panics.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("fuzzyvault: inverse of zero")
	}
	// Exponentiation by squaring: a^(65534).
	result := Elem(1)
	base := a
	exp := uint32(1<<16 - 2)
	for exp > 0 {
		if exp&1 != 0 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		exp >>= 1
	}
	return result
}

// Div divides a by b.
func Div(a, b Elem) Elem { return Mul(a, Inv(b)) }

// Poly is a polynomial over GF(2^16), coefficient i multiplying x^i.
type Poly []Elem

// Eval evaluates the polynomial at x (Horner).
func (p Poly) Eval(x Elem) Elem {
	var y Elem
	for i := len(p) - 1; i >= 0; i-- {
		y = Add(Mul(y, x), p[i])
	}
	return y
}

// Interpolate returns the unique polynomial of degree < len(points)
// through the given (x, y) points (Lagrange). X values must be
// distinct; duplicates panic.
func Interpolate(xs, ys []Elem) Poly {
	n := len(xs)
	if n == 0 || n != len(ys) {
		panic("fuzzyvault: bad interpolation input")
	}
	out := make(Poly, n)
	// For each basis polynomial L_i, accumulate y_i * L_i.
	for i := 0; i < n; i++ {
		// numer = prod_{j!=i} (x - xs[j]) as coefficients; denom =
		// prod_{j!=i} (xs[i] - xs[j]).
		numer := make(Poly, 1, n)
		numer[0] = 1
		denom := Elem(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if xs[i] == xs[j] {
				panic("fuzzyvault: duplicate interpolation x")
			}
			// numer *= (x + xs[j])  (characteristic 2: minus == plus)
			next := make(Poly, len(numer)+1)
			for d, c := range numer {
				next[d+1] = Add(next[d+1], c)         // * x
				next[d] = Add(next[d], Mul(c, xs[j])) // * xs[j]
			}
			numer = next
			denom = Mul(denom, Add(xs[i], xs[j]))
		}
		scale := Div(ys[i], denom)
		for d, c := range numer {
			out[d] = Add(out[d], Mul(c, scale))
		}
	}
	return out
}
