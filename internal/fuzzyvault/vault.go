package fuzzyvault

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"trust/internal/fingerprint"
	"trust/internal/sim"
)

// Quantization of a minutia into a 16-bit field element: 5 bits of
// x-cell, 6 bits of y-cell, 5 bits of angle bin. Cells are 0.55 mm —
// roughly the matcher's pairing tolerance.
const (
	cellMM    = 0.55
	xBits     = 5
	yBits     = 6
	angleBits = 5
	angleBins = 1 << angleBits
)

// quantize maps a minutia to its field element; ok is false when the
// position falls outside the representable grid.
func quantize(m fingerprint.Minutia) (Elem, bool) {
	xc := int(m.Pos.X / cellMM)
	yc := int(m.Pos.Y / cellMM)
	if xc < 0 || xc >= 1<<xBits || yc < 0 || yc >= 1<<yBits {
		return 0, false
	}
	ang := m.Angle
	for ang < 0 {
		ang += 2 * math.Pi
	}
	ab := int(ang/(2*math.Pi)*angleBins) % angleBins
	return Elem(xc<<(yBits+angleBits) | yc<<angleBits | ab), true
}

// neighbors enumerates the quantized elements within +/-1 cell in x and
// y and +/-1 angle bin of the minutia — the unlock tolerance.
func neighbors(m fingerprint.Minutia) []Elem {
	var out []Elem
	base := m
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for da := -1; da <= 1; da++ {
				q := base
				q.Pos.X += float64(dx) * cellMM
				q.Pos.Y += float64(dy) * cellMM
				q.Angle += float64(da) * (2 * math.Pi / angleBins)
				if e, ok := quantize(q); ok {
					out = append(out, e)
				}
			}
		}
	}
	return out
}

// Point is one vault entry.
type Point struct {
	X, Y Elem
}

// Vault is a locked fuzzy vault.
type Vault struct {
	Points []Point // genuine + chaff, shuffled
	Degree int     // polynomial degree + 1 (number of coefficients)
}

// Params configures vault construction and decoding.
type Params struct {
	// PolyCoeffs is the number of polynomial coefficients: SecretLen
	// words of payload plus two CRC check words. Security and FRR both
	// grow with it.
	PolyCoeffs int
	// Chaff is the number of decoy points.
	Chaff int
	// DecodeTrials bounds the random-subset decoding attempts.
	DecodeTrials int
}

// SecretLen is the number of payload words a vault with these
// parameters hides.
func (p Params) SecretLen() int { return p.PolyCoeffs - 2 }

// DefaultParams matches the published implementations: degree-8
// polynomial (9 coefficients: 7 secret words + 32-bit check), 200
// chaff points.
func DefaultParams() Params {
	return Params{PolyCoeffs: 9, Chaff: 200, DecodeTrials: 4000}
}

// checkWords derives the two 16-bit check coefficients (an IEEE CRC-32
// split in half) appended to the secret, so decoding self-verifies with
// a 2^-32 collision probability — negligible across the bounded trial
// budget.
func checkWords(words []Elem) (Elem, Elem) {
	buf := make([]byte, 0, 2*len(words))
	for _, w := range words {
		buf = append(buf, byte(w>>8), byte(w))
	}
	c := crc32.ChecksumIEEE(buf)
	return Elem(c >> 16), Elem(c)
}

// Lock hides secret (PolyCoeffs-1 words) in a vault keyed by the
// template's minutiae. The template must supply at least PolyCoeffs
// distinct quantized positions.
func Lock(t *fingerprint.Template, secret []Elem, p Params, rng *sim.RNG) (*Vault, error) {
	if len(secret) != p.SecretLen() {
		return nil, fmt.Errorf("fuzzyvault: secret must be %d words, got %d", p.SecretLen(), len(secret))
	}
	poly := make(Poly, p.PolyCoeffs)
	copy(poly, secret)
	poly[p.PolyCoeffs-2], poly[p.PolyCoeffs-1] = checkWords(secret)

	used := map[Elem]bool{}
	var points []Point
	for _, m := range t.Minutiae {
		e, ok := quantize(m)
		if !ok || used[e] {
			continue
		}
		used[e] = true
		points = append(points, Point{X: e, Y: poly.Eval(e)})
	}
	if len(points) < p.PolyCoeffs {
		return nil, errors.New("fuzzyvault: too few distinct genuine points")
	}
	// Chaff: decoys drawn from the same plausible minutiae space as
	// genuine points (an attacker must not be able to filter chaff by
	// its encoding), with y deliberately off the polynomial.
	target := len(points) + p.Chaff
	for len(points) < target {
		x := Elem(rng.Intn(1<<xBits)<<(yBits+angleBits) |
			rng.Intn(1<<yBits)<<angleBits |
			rng.Intn(angleBins))
		if used[x] {
			continue
		}
		used[x] = true
		y := Elem(rng.Uint64())
		if y == poly.Eval(x) {
			y ^= 1
		}
		points = append(points, Point{X: x, Y: y})
	}
	// Shuffle so genuine points are not positionally identifiable.
	perm := rng.Perm(len(points))
	shuffled := make([]Point, len(points))
	for i, j := range perm {
		shuffled[j] = points[i]
	}
	return &Vault{Points: shuffled, Degree: p.PolyCoeffs}, nil
}

// Unlock attempts to recover the secret with a probe minutiae set
// (same frame as the template — the vault has NO alignment recovery,
// which is one of the two reasons the paper rejects it). Returns the
// secret on success.
func (v *Vault) Unlock(probe []fingerprint.Minutia, p Params, rng *sim.RNG) ([]Elem, bool) {
	// Candidate selection: vault points whose x is within the unlock
	// tolerance of some probe minutia.
	wanted := map[Elem]bool{}
	for _, m := range probe {
		for _, e := range neighbors(m) {
			wanted[e] = true
		}
	}
	var candX, candY []Elem
	for _, pt := range v.Points {
		if wanted[pt.X] {
			candX = append(candX, pt.X)
			candY = append(candY, pt.Y)
		}
	}
	k := v.Degree
	if len(candX) < k {
		return nil, false
	}
	// Bounded random-subset decoding: interpolate k candidates, check
	// the CRC coefficient.
	idx := make([]int, k)
	xs := make([]Elem, k)
	ys := make([]Elem, k)
	for trial := 0; trial < p.DecodeTrials; trial++ {
		// Sample k distinct indices.
		seen := map[int]bool{}
		for i := 0; i < k; {
			j := rng.Intn(len(candX))
			if !seen[j] {
				seen[j] = true
				idx[i] = j
				i++
			}
		}
		dup := false
		for i := 0; i < k && !dup; i++ {
			xs[i], ys[i] = candX[idx[i]], candY[idx[i]]
			for j := 0; j < i; j++ {
				if xs[j] == xs[i] {
					dup = true
					break
				}
			}
		}
		if dup {
			continue
		}
		poly := Interpolate(xs, ys)
		secret := poly[:k-2]
		c1, c2 := checkWords(secret)
		if c1 == poly[k-2] && c2 == poly[k-1] {
			out := make([]Elem, k-2)
			copy(out, secret)
			return out, true
		}
	}
	return nil, false
}
