package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, 5}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(Point{4, 6}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestPointRotate(t *testing.T) {
	p := Point{1, 0}
	got := p.Rotate(math.Pi / 2)
	if math.Abs(got.X) > 1e-12 || math.Abs(got.Y-1) > 1e-12 {
		t.Fatalf("Rotate(pi/2) = %v, want (0,1)", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(10, 20, 30, 40)
	if r.W() != 30 || r.H() != 40 || r.Area() != 1200 {
		t.Fatalf("W/H/Area = %v/%v/%v", r.W(), r.H(), r.Area())
	}
	if c := r.Center(); c != (Point{25, 40}) {
		t.Fatalf("Center = %v", c)
	}
	if !r.Contains(Point{10, 20}) {
		t.Error("Min corner should be contained")
	}
	if r.Contains(Point{40, 60}) {
		t.Error("Max corner should be excluded")
	}
}

func TestRectIntersect(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(5, 5, 10, 10)
	got := a.Intersect(b)
	if got != RectWH(5, 5, 5, 5) {
		t.Fatalf("Intersect = %v", got)
	}
	c := RectWH(20, 20, 5, 5)
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint rects should intersect empty")
	}
	if a.Overlaps(c) {
		t.Fatal("disjoint rects should not overlap")
	}
}

func TestRectUnion(t *testing.T) {
	a := RectWH(0, 0, 1, 1)
	b := RectWH(5, 5, 1, 1)
	u := a.Union(b)
	if u != RectWH(0, 0, 6, 6) {
		t.Fatalf("Union = %v", u)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("Union with empty = %v", got)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Fatalf("empty Union b = %v", got)
	}
}

func TestRectInset(t *testing.T) {
	r := RectWH(0, 0, 10, 10).Inset(2)
	if r != RectWH(2, 2, 6, 6) {
		t.Fatalf("Inset = %v", r)
	}
	if !RectWH(0, 0, 2, 2).Inset(2).Empty() {
		t.Fatal("over-inset should be empty")
	}
}

func TestRectClamp(t *testing.T) {
	r := RectWH(0, 0, 10, 10)
	if got := r.Clamp(Point{-5, 3}); got != (Point{0, 3}) {
		t.Fatalf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{20, 30}); got != (Point{10, 10}) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestWrapAngleRange(t *testing.T) {
	if err := quick.Check(func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) || math.Abs(theta) > 1e6 {
			return true
		}
		w := WrapAngle(theta)
		return w > -math.Pi-1e-9 && w <= math.Pi+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAngleDiff(t *testing.T) {
	if d := AngleDiff(0.1, 2*math.Pi+0.1); d > 1e-9 {
		t.Fatalf("full-turn diff = %v", d)
	}
	if d := AngleDiff(-math.Pi+0.01, math.Pi-0.01); math.Abs(d-0.02) > 1e-9 {
		t.Fatalf("wraparound diff = %v, want 0.02", d)
	}
}

func TestIntersectCommutes(t *testing.T) {
	if err := quick.Check(func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := RectWH(float64(ax), float64(ay), float64(aw), float64(ah))
		b := RectWH(float64(bx), float64(by), float64(bw), float64(bh))
		return a.Intersect(b) == b.Intersect(a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectAreaBounded(t *testing.T) {
	if err := quick.Check(func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := RectWH(float64(ax), float64(ay), float64(aw), float64(ah))
		b := RectWH(float64(bx), float64(by), float64(bw), float64(bh))
		in := a.Intersect(b).Area()
		return in <= a.Area()+1e-9 && in <= b.Area()+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}
