// Package geom provides the small 2-D geometry vocabulary shared by the
// touchscreen, sensor, placement, and touch-behaviour packages. All
// coordinates are in screen pixels unless a package states otherwise;
// physical dimensions carry explicit millimetre or micrometre names.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in continuous screen coordinates. X grows right,
// Y grows down, matching display conventions.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s about the origin.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Rotate returns p rotated by theta radians about the origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the top-left corner and Max
// the bottom-right (exclusive); a Rect with Max <= Min on either axis
// is empty.
type Rect struct {
	Min, Max Point
}

// RectWH builds a rectangle from a top-left corner and a size.
func RectWH(x, y, w, h float64) Rect {
	return Rect{Point{x, y}, Point{x + w, y + h}}
}

// W returns the rectangle width (never negative).
func (r Rect) W() float64 { return math.Max(0, r.Max.X-r.Min.X) }

// H returns the rectangle height (never negative).
func (r Rect) H() float64 { return math.Max(0, r.Max.Y-r.Min.Y) }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.Max.X <= r.Min.X || r.Max.Y <= r.Min.Y }

// Center returns the rectangle centre.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (Min inclusive, Max
// exclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Overlaps reports whether r and s share any area.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Union returns the smallest rectangle containing both r and s. An
// empty operand is ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Inset shrinks the rectangle by d on every side. A negative d grows
// it.
func (r Rect) Inset(d float64) Rect {
	out := Rect{Point{r.Min.X + d, r.Min.Y + d}, Point{r.Max.X - d, r.Max.Y - d}}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Clamp returns the point inside r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// WrapAngle normalizes an angle into (-pi, pi].
func WrapAngle(theta float64) float64 {
	for theta > math.Pi {
		theta -= 2 * math.Pi
	}
	for theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}

// AngleDiff returns the magnitude of the smallest rotation taking a to
// b, in [0, pi].
func AngleDiff(a, b float64) float64 {
	return math.Abs(WrapAngle(a - b))
}
