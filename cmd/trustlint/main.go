// Command trustlint runs the repository's contract analyzers over Go
// packages and exits non-zero on any finding. It machine-checks what
// the compiler cannot: the single-seed determinism contract
// (docs/sweep-engine.md) and the constant-time comparison discipline of
// the protocol layer. See docs/static-analysis.md for the rules and the
// //trustlint:allow suppression directive.
//
// Usage:
//
//	trustlint [packages]     # default ./...
//	trustlint -list          # print the rules and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"trust/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the registered rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: trustlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "trustlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Lint(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trustlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(rel(wd, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "trustlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// rel shortens absolute file paths to be relative to the working
// directory, keeping diagnostics clickable and diff-friendly.
func rel(wd string, f analysis.Finding) string {
	s := f.String()
	if len(s) > len(wd)+1 && s[:len(wd)] == wd && s[len(wd)] == '/' {
		return s[len(wd)+1:]
	}
	return s
}
