// Command trustlint runs the repository's contract analyzers over Go
// packages and exits non-zero on any finding. It machine-checks what
// the compiler cannot: the single-seed determinism contract
// (docs/sweep-engine.md), the constant-time comparison discipline of
// the protocol layer, the server's lock hierarchy
// (docs/server-scaling.md), buffer-pool aliasing, and secret-material
// flow into logs. See docs/static-analysis.md for the rules and the
// //trustlint:allow suppression directive.
//
// Usage:
//
//	trustlint [packages]             # default ./...
//	trustlint -list                  # print the rules and exit
//	trustlint -json [packages]       # findings as a JSON array
//	trustlint -rules a,b [packages]  # run only the named rules
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"trust/internal/analysis"
)

// jsonFinding is the machine-readable record -json emits, one per
// finding; the schema is documented in docs/static-analysis.md.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	list := flag.Bool("list", false, "list the registered rules and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	rulesFlag := flag.String("rules", "", "comma-separated rule subset to run (default: all; stale-directive detection needs the full set)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: trustlint [-list] [-json] [-rules a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var rules []string
	if *rulesFlag != "" {
		known := make(map[string]bool)
		for _, name := range analysis.RuleNames() {
			known[name] = true
		}
		for _, r := range strings.Split(*rulesFlag, ",") {
			r = strings.TrimSpace(r)
			if r == "" {
				continue
			}
			if !known[r] {
				fmt.Fprintf(os.Stderr, "trustlint: unknown rule %q (valid: %s)\n", r, strings.Join(analysis.RuleNames(), ", "))
				os.Exit(2)
			}
			rules = append(rules, r)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "trustlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.LintRules(wd, rules, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trustlint: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		records := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			records = append(records, jsonFinding{
				File: relPath(wd, f.Pos.Filename),
				Line: f.Pos.Line,
				Col:  f.Pos.Column,
				Rule: f.Rule,
				Msg:  f.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintf(os.Stderr, "trustlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(rel(wd, f))
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "trustlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// rel shortens absolute file paths to be relative to the working
// directory, keeping diagnostics clickable and diff-friendly.
func rel(wd string, f analysis.Finding) string {
	s := f.String()
	if len(s) > len(wd)+1 && s[:len(wd)] == wd && s[len(wd)] == '/' {
		return s[len(wd)+1:]
	}
	return s
}

// relPath is rel for a bare filename.
func relPath(wd, name string) string {
	if len(name) > len(wd)+1 && name[:len(wd)] == wd && name[len(wd)] == '/' {
		return name[len(wd)+1:]
	}
	return name
}
