// Command trustsim runs end-to-end TRUST scenarios from the command
// line.
//
// Usage:
//
//	trustsim -scenario local    # owner uses the phone; risk trace
//	trustsim -scenario theft    # device stolen mid-session
//	trustsim -scenario remote   # register + login + browse at a server
//	trustsim -scenario attacks  # full Sec IV-B attack suite
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"trust"
	"trust/internal/core"
	"trust/internal/fingerprint"
	"trust/internal/flock"
)

func main() {
	var (
		scenario = flag.String("scenario", "local", "local | theft | remote | attacks | drift")
		seed     = flag.Uint64("seed", 2012, "deterministic seed")
		touches  = flag.Int("touches", 300, "touches in the simulated session")
	)
	flag.Parse()

	var err error
	switch *scenario {
	case "local":
		err = runLocal(*seed, *touches, -1)
	case "theft":
		err = runLocal(*seed, *touches, *touches/2)
	case "remote":
		err = runRemote(*seed)
	case "attacks":
		err = runAttacks(*seed)
	case "drift":
		err = runDrift(*seed)
	default:
		fmt.Fprintf(os.Stderr, "trustsim: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trustsim: %v\n", err)
		os.Exit(1)
	}
}

func runLocal(seed uint64, touches, impostorStart int) error {
	w, err := trust.NewWorld(seed)
	if err != nil {
		return err
	}
	userName := "user1-right-thumb"
	u := w.Users[userName]
	mod, err := flock.New(flock.DefaultConfig(w.Place), w.CA, "sim-phone", seed+5)
	if err != nil {
		return err
	}
	if err := mod.Enroll(fingerprint.NewTemplate(u.Finger)); err != nil {
		return err
	}
	ld, err := trust.NewLocalDevice(mod, trust.DefaultLocalPolicy(), w.Place.Sensors[0])
	if err != nil {
		return err
	}
	s, err := trust.GenerateSession(u.Model, w.Screen, touches, trust.NewRNG(seed^0x51))
	if err != nil {
		return err
	}
	var impostor *trust.Finger
	if impostorStart >= 0 {
		impostor = trust.SynthesizeFinger(seed+31337, trust.Whorl)
		fmt.Printf("scenario: device stolen at touch %d\n\n", impostorStart)
	}
	report, err := trust.RunLocalSession(ld, s, u.Finger, impostor, impostorStart)
	if err != nil {
		return err
	}

	st := report.Stats
	fmt.Printf("user: %s, %d touches over %v\n", report.User, report.Touches, report.Duration.Round(time.Second))
	fmt.Printf("pipeline: %d outside sensors, %d low quality, %d matched, %d mismatched\n",
		st.OutsideSensor, st.LowQuality, st.Matched, st.Mismatched)
	fmt.Printf("verified-capture rate: %.1f%%\n", report.CaptureRate()*100)
	fmt.Printf("responses: %d halts, %d locks; device locked at end: %v\n",
		report.HaltEvents, report.LockEvents, report.Locked)
	if impostorStart >= 0 {
		if report.DetectionTouches >= 0 {
			fmt.Printf("impostor detected after %d touches\n", report.DetectionTouches)
		} else {
			fmt.Println("impostor NOT detected")
		}
	}
	fmt.Println("\nrisk trace (every 10th touch):")
	for i, p := range report.Trace {
		if i%10 != 0 && p.Action == core.NoAction {
			continue
		}
		fmt.Printf("  touch %3d  %-15s risk %.2f  %s\n", p.Touch, p.Outcome, p.Risk, p.Action)
	}
	return nil
}

func runRemote(seed uint64) error {
	w, err := trust.NewWorld(seed)
	if err != nil {
		return err
	}
	srv, err := w.AddServer("bank.example")
	if err != nil {
		return err
	}
	userName := "user1-right-thumb"
	dev, err := w.AddDevice("sim-phone", userName, "bank.example")
	if err != nil {
		return err
	}
	now, err := w.TouchButtonUntilVerified(dev, userName, 0)
	if err != nil {
		return err
	}
	if err := dev.Register(now, "acct-sim", "recovery-pw"); err != nil {
		return err
	}
	fmt.Println("registered acct-sim at bank.example (Fig 9 flow)")
	now, err = w.TouchButtonUntilVerified(dev, userName, now)
	if err != nil {
		return err
	}
	if err := dev.Login(now, srv.Certificate(), "acct-sim"); err != nil {
		return err
	}
	fmt.Println("logged in; session established (Fig 10 flow)")
	for _, action := range []string{"view-statement", "home", "view-statement"} {
		now, err = w.TouchButtonUntilVerified(dev, userName, now)
		if err != nil {
			return err
		}
		if err := dev.Browse(now, action); err != nil {
			return err
		}
		fmt.Printf("  request %-16s ok (continuous auth)\n", action)
	}
	report := srv.RunAudit()
	fmt.Printf("offline frame audit: %d entries checked, %d flagged\n", report.Checked, report.Tampered)
	return nil
}

// runDrift shows template aging: the owner's skin drifts epoch by
// epoch; a static module decays while an adaptive module tracks.
func runDrift(seed uint64) error {
	w, err := trust.NewWorld(seed)
	if err != nil {
		return err
	}
	u := w.Users["user1-right-thumb"]
	mkModule := func(adaptive bool, moduleSeed uint64) (*flock.Module, error) {
		cfg := flock.DefaultConfig(w.Place)
		if adaptive {
			cfg.AdaptScoreMin = 0.6
		}
		m, err := flock.New(cfg, w.CA, "drift-phone", moduleSeed)
		if err != nil {
			return nil, err
		}
		return m, m.Enroll(fingerprint.NewTemplate(u.Finger))
	}
	static, err := mkModule(false, seed+1)
	if err != nil {
		return err
	}
	adaptive, err := mkModule(true, seed+2)
	if err != nil {
		return err
	}

	fmt.Println("epoch  cumulative drift  static accept  adaptive accept")
	current := u.Finger
	rng := trust.NewRNG(seed ^ 0xd1)
	var at time.Duration
	for epoch := 1; epoch <= 8; epoch++ {
		current = current.Drifted(0.22, seed+uint64(epoch))
		sOK, aOK, n := 0, 0, 0
		for i := 0; i < 20; i++ {
			ev := trust.TouchEvent{
				At: at, Pos: w.Place.Sensors[0].Center(),
				Pressure: 0.7, RadiusMM: 4.2, SpeedMMS: 1,
				FingerOffsetMM: trust.Point{X: rng.Normal(0, 1.2), Y: rng.Normal(0, 1.5)},
			}
			n++
			if static.HandleTouch(ev, current).Kind == flock.Matched {
				sOK++
			}
			if adaptive.HandleTouch(ev, current).Kind == flock.Matched {
				aOK++
			}
			at += 500 * time.Millisecond
		}
		fmt.Printf("%5d  %13.1f mm  %12d%%  %14d%%\n",
			epoch, 0.22*float64(epoch), 100*sOK/n, 100*aOK/n)
	}
	fmt.Println("\nconfident-match adaptation keeps the template usable as skin drifts")
	return nil
}

func runAttacks(seed uint64) error {
	results := trust.RunAttackSuite(seed)
	defended := 0
	for _, r := range results {
		status := "DEFENDED"
		if !r.Defended {
			status = "BREACHED"
		}
		if r.Err != nil {
			status = "ERROR: " + r.Err.Error()
		}
		if r.Defended {
			defended++
		}
		fmt.Printf("%-34s %-9s %s\n", r.Name, status, r.Mechanism)
	}
	fmt.Printf("\n%d/%d attacks defended\n", defended, len(results))
	if defended != len(results) {
		return fmt.Errorf("attack suite breached")
	}
	return nil
}
