// Command benchtab regenerates the paper's tables and figures as text
// artifacts (see DESIGN.md section 4 for the experiment index).
//
// Usage:
//
//	benchtab -all                # every artifact, paper order
//	benchtab -table 1            # Table I
//	benchtab -fig 7              # Figure 7
//	benchtab -x attacks          # extension experiment X3
//	benchtab -all -seed 99       # different deterministic seed
//	benchtab -json               # measure every artifact, write BENCH_harness.json
//	benchtab -server-json -      # measure server throughput, write BENCH_server.json
//	benchtab -ftdc chaos.ftdc    # chaos sweep with telemetry capture, write the FTDC file
//	benchtab -ftdc-print chaos.ftdc        # per-metric first/last/min/max table
//	benchtab -ftdc-diff before.ftdc,after.ftdc   # per-metric final-value deltas
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"trust/internal/analysis"
	"trust/internal/device"
	"trust/internal/ftdc"
	"trust/internal/harness"
	"trust/internal/loadgen"
)

func main() {
	var (
		all        = flag.Bool("all", false, "regenerate every table and figure")
		table      = flag.Int("table", 0, "regenerate Table N (1 or 2)")
		fig        = flag.Int("fig", 0, "regenerate Figure N (1..10)")
		ext        = flag.String("x", "", "extension experiment: placement|window|attacks|energy|frameaudit|transfer|fuzzyvault|modalities|hijack|imagepipeline|adaptation|noise|personalization|chaos")
		seed       = flag.Uint64("seed", harness.Seed, "deterministic experiment seed")
		out        = flag.String("out", "", "also write each artifact to <out>/<id>.txt")
		jsonPath   = flag.String("json", "", "measure every artifact generator and write {name: {ns_per_op, allocs_per_op}} to the given file ('' = off; '-' = BENCH_harness.json)")
		serverJSON = flag.String("server-json", "", "measure server load scenarios (ops/sec, p50/p99) and write the report to the given file ('' = off; '-' = BENCH_server.json)")
		ftdcOut    = flag.String("ftdc", "", "run the chaos sweep with telemetry capture and write the FTDC bytes to the given file")
		ftdcPrint  = flag.String("ftdc-print", "", "pretty-print an FTDC capture file (per-metric first/last/min/max)")
		ftdcDiff   = flag.String("ftdc-diff", "", "diff two FTDC capture files by final value: comma-separated pair a.ftdc,b.ftdc")
	)
	flag.Parse()

	emit := func(r harness.Result) {
		fmt.Println(r.String())
		if *out == "" {
			return
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		path := filepath.Join(*out, r.ID+".txt")
		if err := os.WriteFile(path, []byte(r.String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}
	run := func(r harness.Result, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		emit(r)
	}

	readCapture := func(path string) *ftdc.Data {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		d, err := ftdc.Read(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", path, err)
			os.Exit(1)
		}
		return d
	}

	switch {
	case *ftdcOut != "":
		res, capture, err := harness.XChaosCapture(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*ftdcOut, capture, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		emit(res)
		d, err := ftdc.Read(capture)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: capture self-check: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d bytes, %d samples x %d metrics\n", *ftdcOut, len(capture), d.Rows(), len(d.Names))
	case *ftdcPrint != "":
		readCapture(*ftdcPrint).Dump(os.Stdout)
	case *ftdcDiff != "":
		parts := strings.Split(*ftdcDiff, ",")
		if len(parts) != 2 {
			fmt.Fprintf(os.Stderr, "benchtab: -ftdc-diff wants two comma-separated files, got %q\n", *ftdcDiff)
			os.Exit(2)
		}
		ftdc.WriteDiff(os.Stdout, ftdc.Diff(readCapture(parts[0]), readCapture(parts[1])))
	case *serverJSON != "":
		path := *serverJSON
		if path == "-" {
			path = "BENCH_server.json"
		}
		if err := writeServerJSON(path, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	case *jsonPath != "":
		path := *jsonPath
		if path == "-" {
			path = "BENCH_harness.json"
		}
		if err := writeBenchJSON(path, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	case *all:
		results, err := harness.AllResults(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			emit(r)
		}
	case *table == 1:
		run(harness.Table1(*seed))
	case *table == 2:
		run(harness.Table2())
	case *fig >= 1 && *fig <= 10:
		gens := map[int]func() (harness.Result, error){
			1:  func() (harness.Result, error) { return harness.Fig1(*seed) },
			2:  func() (harness.Result, error) { return harness.Fig2(*seed) },
			3:  func() (harness.Result, error) { return harness.Fig3() },
			4:  func() (harness.Result, error) { return harness.Fig4(*seed) },
			5:  func() (harness.Result, error) { return harness.Fig5(*seed) },
			6:  func() (harness.Result, error) { return harness.Fig6(*seed) },
			7:  func() (harness.Result, error) { return harness.Fig7(*seed) },
			8:  func() (harness.Result, error) { return harness.Fig8(*seed) },
			9:  func() (harness.Result, error) { return harness.Fig9(*seed) },
			10: func() (harness.Result, error) { return harness.Fig10(*seed) },
		}
		run(gens[*fig]())
	case *ext != "":
		gens := map[string]func() (harness.Result, error){
			"placement":       func() (harness.Result, error) { return harness.XPlacement(*seed) },
			"window":          func() (harness.Result, error) { return harness.XWindow(*seed) },
			"attacks":         func() (harness.Result, error) { return harness.XAttacks(*seed) },
			"energy":          func() (harness.Result, error) { return harness.XEnergy(*seed) },
			"frameaudit":      func() (harness.Result, error) { return harness.XFrameAudit(*seed) },
			"transfer":        func() (harness.Result, error) { return harness.XTransfer(*seed) },
			"fuzzyvault":      func() (harness.Result, error) { return harness.XFuzzyVault(*seed) },
			"modalities":      func() (harness.Result, error) { return harness.XModalities(*seed) },
			"hijack":          func() (harness.Result, error) { return harness.XHijack(*seed) },
			"imagepipeline":   func() (harness.Result, error) { return harness.XImagePipeline(*seed) },
			"adaptation":      func() (harness.Result, error) { return harness.XAdaptation(*seed) },
			"noise":           func() (harness.Result, error) { return harness.XNoise(*seed) },
			"personalization": func() (harness.Result, error) { return harness.XPersonalization(*seed) },
			"chaos":           func() (harness.Result, error) { return harness.XChaos(*seed) },
			"streamchaos":     func() (harness.Result, error) { return harness.XStreamChaos(*seed) },
		}
		gen, ok := gens[*ext]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtab: unknown extension %q\n", *ext)
			os.Exit(2)
		}
		run(gen())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeServerJSON measures the fixed server load-scenario matrix (the
// concurrency PR's before/after evidence) and writes the throughput
// report with gomaxprocs/num_cpu metadata. The direct 1-device row is
// the serial baseline the parallel rows are compared against; see
// docs/server-scaling.md.
func writeServerJSON(path string, seed uint64) error {
	// Fail on an unwritable path before spending minutes measuring.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	f.Close()
	configs := []loadgen.Config{
		{Devices: 1, Transport: loadgen.Direct, Mode: loadgen.PageRequest, Seed: seed},
		{Devices: 8, Transport: loadgen.Direct, Mode: loadgen.PageRequest, Seed: seed},
		{Devices: 8, Transport: loadgen.Direct, Mode: loadgen.Login, Seed: seed},
		// Session-resumption rows: the ticket fast path against the full
		// login directly above it (same transport, same fleet size) is the
		// resumption PR's headline ratio; churn mixes cold and resumed
		// logins 1:7; the lossy resume row shows the ticket path riding
		// out drops by falling back to the cold path under the same retry
		// budget the other lossy rows use.
		{Devices: 8, Transport: loadgen.Direct, Mode: loadgen.Resume, Seed: seed},
		{Devices: 8, Transport: loadgen.Direct, Mode: loadgen.Churn, Seed: seed},
		{Devices: 8, Transport: loadgen.Direct, Mode: loadgen.Resume, Seed: seed,
			Faults: device.FaultProfile{DropRate: 0.2}, RetryAttempts: 4},
		{Devices: 8, Transport: loadgen.HTTPJSON, Mode: loadgen.PageRequest, Seed: seed},
		{Devices: 8, Transport: loadgen.HTTPBinary, Mode: loadgen.PageRequest, Seed: seed},
		// Lossy-network rows: each message direction drops at 20%, the
		// resilient client retries with a 4-attempt budget. The delta
		// against the clean rows above is the resilience overhead.
		{Devices: 8, Transport: loadgen.Direct, Mode: loadgen.PageRequest, Seed: seed,
			Faults: device.FaultProfile{DropRate: 0.2}, RetryAttempts: 4},
		{Devices: 8, Transport: loadgen.HTTPBinary, Mode: loadgen.PageRequest, Seed: seed,
			Faults: device.FaultProfile{DropRate: 0.2}, RetryAttempts: 4},
		// Streamed rows: one multiplexed connection per device over the
		// same TCP loopback the HTTP rows use. The clean row against
		// page-request_http-binary_8 is the streaming PR's headline
		// speedup; the batch row adds pipelining; the cut row shows the
		// stream riding out mid-frame cuts with its retry budget.
		{Devices: 8, Transport: loadgen.Stream, Mode: loadgen.PageRequest, Seed: seed},
		{Devices: 8, Transport: loadgen.Stream, Mode: loadgen.PageRequest, Seed: seed, Batch: 16},
		{Devices: 8, Transport: loadgen.Stream, Mode: loadgen.PageRequest, Seed: seed,
			StreamFaults:  device.StreamFaultProfile{CutRate: 0.1, TearRate: 0.25, HandshakeGrace: 1},
			RetryAttempts: 4},
		// Durable-store rows: the WAL enroll row against the in-memory
		// enroll row directly above it prices the synced append every
		// acknowledged enrollment pays on the durable backend
		// (docs/persistence.md).
		{Devices: 8, Transport: loadgen.Direct, Mode: loadgen.Enroll, Seed: seed},
		{Devices: 8, Transport: loadgen.Direct, Mode: loadgen.Enroll, Seed: seed, Backend: loadgen.WALBackend},
	}
	var results []loadgen.Result
	for _, cfg := range configs {
		// Settle the heap between scenarios so one row's garbage does
		// not inflate the next row's GC share — the scenarios are
		// independent measurements, not one workload.
		runtime.GC()
		res, err := loadgen.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.Name(), err)
		}
		results = append(results, res)
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ops/sec %10.2fµs p50 %10.2fµs p99 %6d allocs/op\n",
			res.Name, res.OpsPerSec, float64(res.P50Ns)/1e3, float64(res.P99Ns)/1e3, res.AllocsPerOp)
	}
	// Recovery rows: snapshot-load + WAL-replay time for a cold server
	// start at each account-store size (the crash-recovery downtime).
	for _, n := range []int{1_000, 10_000, 100_000} {
		runtime.GC()
		res, err := loadgen.MeasureRecovery(n)
		if err != nil {
			return fmt.Errorf("wal-recovery %d: %w", n, err)
		}
		results = append(results, res)
		fmt.Fprintf(os.Stderr, "%-28s %12.2fms per recovery\n", res.Name, float64(res.NsPerOp)/1e6)
	}
	report := loadgen.NewReport(results)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchFTDCSample drives the FTDC sampling hot path with a
// server-sized schema, the same loop the package's own BenchmarkSample
// runs.
func benchFTDCSample(b *testing.B) {
	names := make([]string, 74)
	for i := range names {
		names[i] = "metric_column_" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	c := ftdc.NewCapture(ftdc.NewSchema(names))
	vals := make([]int64, len(names))
	var now int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += int64(time.Millisecond)
		for j := range vals {
			vals[j] += int64(j&7) - 3
		}
		c.Sample(now, vals)
	}
}

// benchEntry is one measured artifact in the -json report.
type benchEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// writeBenchJSON measures every artifact generator with
// testing.Benchmark and writes the machine-readable timing report. The
// names mirror the Benchmark* functions in bench_test.go, so CI can
// diff this file against `go test -bench` output.
func writeBenchJSON(path string, seed uint64) error {
	gens := []struct {
		name string
		fn   func() (harness.Result, error)
	}{
		{"Table1", func() (harness.Result, error) { return harness.Table1(seed) }},
		{"Table2", func() (harness.Result, error) { return harness.Table2() }},
		{"Fig1", func() (harness.Result, error) { return harness.Fig1(seed) }},
		{"Fig2", func() (harness.Result, error) { return harness.Fig2(seed) }},
		{"Fig3", func() (harness.Result, error) { return harness.Fig3() }},
		{"Fig4", func() (harness.Result, error) { return harness.Fig4(seed) }},
		{"Fig5", func() (harness.Result, error) { return harness.Fig5(seed) }},
		{"Fig6", func() (harness.Result, error) { return harness.Fig6(seed) }},
		{"Fig7", func() (harness.Result, error) { return harness.Fig7(seed) }},
		{"Fig8", func() (harness.Result, error) { return harness.Fig8(seed) }},
		{"Fig9", func() (harness.Result, error) { return harness.Fig9(seed) }},
		{"Fig10", func() (harness.Result, error) { return harness.Fig10(seed) }},
		{"Placement", func() (harness.Result, error) { return harness.XPlacement(seed) }},
		{"WindowPolicy", func() (harness.Result, error) { return harness.XWindow(seed) }},
		{"Attacks", func() (harness.Result, error) { return harness.XAttacks(seed) }},
		{"Energy", func() (harness.Result, error) { return harness.XEnergy(seed) }},
		{"FrameAudit", func() (harness.Result, error) { return harness.XFrameAudit(seed) }},
		{"Transfer", func() (harness.Result, error) { return harness.XTransfer(seed) }},
		{"FuzzyVault", func() (harness.Result, error) { return harness.XFuzzyVault(seed) }},
		{"Modalities", func() (harness.Result, error) { return harness.XModalities(seed) }},
		{"Hijack", func() (harness.Result, error) { return harness.XHijack(seed) }},
		{"ImagePipeline", func() (harness.Result, error) { return harness.XImagePipeline(seed) }},
		{"Adaptation", func() (harness.Result, error) { return harness.XAdaptation(seed) }},
		{"Noise", func() (harness.Result, error) { return harness.XNoise(seed) }},
		{"Personalization", func() (harness.Result, error) { return harness.XPersonalization(seed) }},
		{"Chaos", func() (harness.Result, error) { return harness.XChaos(seed) }},
		{"StreamChaos", func() (harness.Result, error) { return harness.XStreamChaos(seed) }},
	}
	// Fail on an unwritable path before spending minutes measuring.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	f.Close()
	report := make(map[string]benchEntry, len(gens))
	for _, g := range gens {
		var genErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.fn(); err != nil {
					genErr = err
					b.FailNow()
				}
			}
		})
		if genErr != nil {
			return fmt.Errorf("%s: %w", g.name, genErr)
		}
		report[g.name] = benchEntry{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
		fmt.Fprintf(os.Stderr, "%-16s %12d ns/op %12d allocs/op\n", g.name, res.NsPerOp(), res.AllocsPerOp())
	}
	// The static-analysis sweep runs on every verify, so its cost is
	// tracked alongside the artifact generators (BenchmarkTrustlint /
	// BenchmarkTrustlintColdList in bench_test.go mirror these entries).
	// TrustlintColdList drops the package-list cache each iteration —
	// the first-run cost of a fresh process; Trustlint keeps it warm.
	lints := []struct {
		name string
		cold bool
	}{
		{"TrustlintColdList", true},
		{"Trustlint", false},
	}
	for _, l := range lints {
		var lintErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if l.cold {
					analysis.ResetListCache()
				}
				findings, err := analysis.Lint(".", "./...")
				if err != nil {
					lintErr = err
					b.FailNow()
				}
				if len(findings) > 0 {
					lintErr = fmt.Errorf("tree has %d trustlint finding(s)", len(findings))
					b.FailNow()
				}
			}
		})
		if lintErr != nil {
			return fmt.Errorf("%s: %w", l.name, lintErr)
		}
		report[l.name] = benchEntry{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
		fmt.Fprintf(os.Stderr, "%-16s %12d ns/op %12d allocs/op\n", l.name, res.NsPerOp(), res.AllocsPerOp())
	}
	// The telemetry sampling hot path: one server-sized delta row per
	// op (mirrors BenchmarkFTDCSample in bench_test.go and
	// BenchmarkSample in internal/ftdc). Its allocs/op entry is the
	// recorded form of the package's zero-alloc claim.
	{
		res := testing.Benchmark(benchFTDCSample)
		report["FTDCSample"] = benchEntry{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
		fmt.Fprintf(os.Stderr, "%-16s %12d ns/op %12d allocs/op\n", "FTDCSample", res.NsPerOp(), res.AllocsPerOp())
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
