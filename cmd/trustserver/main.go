// Command trustserver runs a TRUST-enabled web server over HTTP. The
// certificate authority is derived deterministically from -caseed, so a
// trustdevice started with the same -caseed trusts the same root — this
// stands in for factory-provisioned CA material.
//
// Usage:
//
//	trustserver -addr :8443 -domain bank.example -caseed 2012
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"trust/internal/pki"
	"trust/internal/webserver"
)

func main() {
	var (
		addr   = flag.String("addr", ":8443", "listen address")
		domain = flag.String("domain", "bank.example", "server domain")
		caSeed = flag.Uint64("caseed", 2012, "deterministic CA seed shared with devices")
		seed   = flag.Uint64("seed", 1, "server key seed")
	)
	flag.Parse()

	ca, err := pki.NewCA("trust-root", pki.NewDeterministicRand(*caSeed))
	if err != nil {
		log.Fatalf("trustserver: CA: %v", err)
	}
	srv, err := webserver.New(*domain, ca, *seed)
	if err != nil {
		log.Fatalf("trustserver: %v", err)
	}
	fmt.Printf("TRUST server for %s listening on %s (CA seed %d)\n", *domain, *addr, *caSeed)
	fmt.Println("endpoints: /trust/cert /trust/register /trust/login /trust/page /trust/audit")
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
