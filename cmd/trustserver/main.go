// Command trustserver runs a TRUST-enabled web server over HTTP. The
// certificate authority is derived deterministically from -caseed, so a
// trustdevice started with the same -caseed trusts the same root — this
// stands in for factory-provisioned CA material.
//
// Usage:
//
//	trustserver -addr :8443 -domain bank.example -caseed 2012
//	trustserver -wal /var/lib/trust   # durable account store: WAL +
//	                                  # snapshot in the directory, acked
//	                                  # enrollments survive a kill -9
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"trust/internal/pki"
	"trust/internal/store"
	"trust/internal/webserver"
)

func main() {
	var (
		addr   = flag.String("addr", ":8443", "listen address")
		domain = flag.String("domain", "bank.example", "server domain")
		caSeed = flag.Uint64("caseed", 2012, "deterministic CA seed shared with devices")
		seed   = flag.Uint64("seed", 1, "server key seed")
		walDir = flag.String("wal", "", "directory for the durable account store (WAL + snapshot); empty = in-memory only")
		ftdcN  = flag.Int("ftdc", 0, "sample the telemetry row into an in-memory FTDC capture every N requests (0 = off); fetch it from GET /trust/ftdc")
	)
	flag.Parse()

	ca, err := pki.NewCA("trust-root", pki.NewDeterministicRand(*caSeed))
	if err != nil {
		log.Fatalf("trustserver: CA: %v", err)
	}
	backend := store.AccountBackend(store.Memory{})
	if *walDir != "" {
		fsys, err := store.NewDirFS(*walDir)
		if err != nil {
			log.Fatalf("trustserver: wal dir: %v", err)
		}
		wal, err := store.OpenWAL(fsys, store.WALOptions{})
		if err != nil {
			log.Fatalf("trustserver: open wal: %v", err)
		}
		st := wal.Stats()
		fmt.Printf("durable store %s: recovered %d accounts (%d revoked, seq %d, %d torn tail bytes discarded)\n",
			*walDir, st.Live, st.Revoked, st.Seq, st.TornTailBytes)
		backend = wal
	}
	srv, err := webserver.NewDurable(*domain, ca, *seed, backend)
	if err != nil {
		log.Fatalf("trustserver: %v", err)
	}
	defer srv.Close()
	if *ftdcN > 0 {
		srv.EnableFTDC(*ftdcN)
	}
	fmt.Printf("TRUST server for %s listening on %s (CA seed %d)\n", *domain, *addr, *caSeed)
	fmt.Println("endpoints: /trust/cert /trust/register /trust/login /trust/page /trust/audit /trust/ftdc")
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
