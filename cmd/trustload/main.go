// Command trustload measures TRUST server throughput under concurrent
// simulated-device load: N devices register (and log in), then hammer
// the remote-auth hot path while ops/sec and latency percentiles are
// sampled. Virtual protocol time stays deterministic; only the
// measurement clock (testing.Benchmark) is wall time.
//
// Usage:
//
//	trustload                              # page requests, direct, 1 and 8 devices
//	trustload -devices 1,4,16 -transport binary
//	trustload -mode login -devices 8
//	trustload -mode resume -devices 8       # ticket fast path (cold login once, then resumes)
//	trustload -mode churn -devices 8        # 1-in-8 cold logins mixed into resumes
//	trustload -faults 0.2 -retries 4       # 20% loss each way, 4-attempt budget
//	trustload -json BENCH_server.json      # machine-readable report
//	trustload -mode enroll -backend wal    # durable enrollment (WAL append+sync per op)
//	trustload -kill -devices 4             # kill churn sweep: hard-kill + restart over
//	                                       # the WAL, zero lost enrollments required
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"trust/internal/device"
	"trust/internal/loadgen"
)

func main() {
	var (
		devices   = flag.String("devices", "1,8", "comma-separated device counts to sweep")
		transport = flag.String("transport", "direct", "transport: direct|json|binary|stream")
		mode      = flag.String("mode", "page", "operation: page|login|resume|churn")
		seed      = flag.Uint64("seed", 1, "deterministic fleet seed")
		jsonPath  = flag.String("json", "", "also write the report as JSON to the given file")
		faults    = flag.Float64("faults", 0, "per-direction message drop rate on the measured traffic (0..1)")
		retries   = flag.Int("retries", 0, "retry budget per operation (required with -faults or -cut)")
		batch     = flag.Int("batch", 0, "requests pipelined per touch batch (stream transport only)")
		cut       = flag.Float64("cut", 0, "mid-frame cut rate on streamed writes (0..1, stream transport only)")
		tear      = flag.Float64("tear", 0, "torn-write rate on streamed writes (0..1, stream transport only)")
		backend   = flag.String("backend", "memory", "account store backend: memory|wal")
		kill      = flag.Bool("kill", false, "run the kill churn sweep (hard-kill + restart over the WAL backend) instead of a throughput scenario")
		killSets  = flag.Int("kill-rounds", 3, "kill+restart cycles in the -kill sweep")
		killEach  = flag.Int("kill-budget", 32, "enrollments acknowledged per round before the kill in the -kill sweep")
		ftdcDir   = flag.String("ftdc", "", "write each scenario's FTDC telemetry capture to <dir>/<scenario>.ftdc (samples the server row every 64 ops)")
	)
	flag.Parse()
	if *faults < 0 || *faults >= 1 {
		fmt.Fprintf(os.Stderr, "trustload: -faults %v outside [0, 1)\n", *faults)
		os.Exit(2)
	}
	if *faults > 0 && *retries < 1 {
		fmt.Fprintln(os.Stderr, "trustload: -faults needs -retries >= 1 (lossy ops would abort the run)")
		os.Exit(2)
	}
	if *cut < 0 || *cut >= 1 || *tear < 0 || *tear >= 1 {
		fmt.Fprintln(os.Stderr, "trustload: -cut/-tear outside [0, 1)")
		os.Exit(2)
	}
	if *cut > 0 && *retries < 1 {
		fmt.Fprintln(os.Stderr, "trustload: -cut needs -retries >= 1 (cut frames would abort the run)")
		os.Exit(2)
	}
	if (*cut > 0 || *tear > 0 || *batch > 1) && *transport != "stream" {
		fmt.Fprintln(os.Stderr, "trustload: -cut/-tear/-batch need -transport stream")
		os.Exit(2)
	}

	tr, ok := map[string]loadgen.Transport{
		"direct": loadgen.Direct,
		"json":   loadgen.HTTPJSON,
		"binary": loadgen.HTTPBinary,
		"stream": loadgen.Stream,
	}[*transport]
	if !ok {
		fmt.Fprintf(os.Stderr, "trustload: unknown transport %q\n", *transport)
		os.Exit(2)
	}
	md, ok := map[string]loadgen.Mode{
		"page":   loadgen.PageRequest,
		"login":  loadgen.Login,
		"resume": loadgen.Resume,
		"churn":  loadgen.Churn,
		"enroll": loadgen.Enroll,
	}[*mode]
	if !ok {
		fmt.Fprintf(os.Stderr, "trustload: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	be, ok := map[string]loadgen.Backend{
		"memory": loadgen.MemoryBackend,
		"wal":    loadgen.WALBackend,
	}[*backend]
	if !ok {
		fmt.Fprintf(os.Stderr, "trustload: unknown backend %q\n", *backend)
		os.Exit(2)
	}

	var counts []int
	for _, part := range strings.Split(*devices, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "trustload: bad device count %q\n", part)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	if *kill {
		// The kill sweep's report must be byte-for-byte identical at
		// every worker count: run it once per requested count and
		// compare the marshalled reports.
		var prev []byte
		for _, n := range counts {
			rep, err := loadgen.KillSweep(loadgen.KillConfig{
				Workers: n, Rounds: *killSets, Budget: *killEach, Seed: *seed,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "trustload: kill sweep (%d workers): %v\n", n, err)
				os.Exit(1)
			}
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "trustload: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("kill sweep, %d workers: acked=%d recovered=%d lost=%d resurrected=%d torn-tails=%d\n",
				n, rep.Acked, rep.Recovered, rep.Lost, rep.Resurrected, rep.TornTails)
			if rep.Lost != 0 || rep.Resurrected != 0 || rep.Acked != rep.Recovered {
				fmt.Fprintf(os.Stderr, "trustload: DURABILITY VIOLATION: %s\n", data)
				os.Exit(1)
			}
			if prev != nil && string(prev) != string(data) {
				fmt.Fprintf(os.Stderr, "trustload: kill report differs across worker counts:\n%s\nvs\n%s\n", prev, data)
				os.Exit(1)
			}
			prev = data
			if *jsonPath != "" {
				if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "trustload: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Println("kill sweep: zero lost enrollments, report byte-stable across worker counts")
		return
	}

	var results []loadgen.Result
	fmt.Printf("%-28s %10s %12s %10s %10s %8s\n", "scenario", "ops", "ops/sec", "p50", "p99", "allocs")
	for _, n := range counts {
		ftdcEvery := 0
		if *ftdcDir != "" {
			ftdcEvery = 64
		}
		res, err := loadgen.Run(loadgen.Config{
			Devices: n, Transport: tr, Mode: md, Seed: *seed,
			Faults:        device.FaultProfile{DropRate: *faults},
			StreamFaults:  device.StreamFaultProfile{CutRate: *cut, TearRate: *tear, HandshakeGrace: 1},
			RetryAttempts: *retries,
			Batch:         *batch,
			Backend:       be,
			FTDCEvery:     ftdcEvery,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "trustload: %v\n", err)
			os.Exit(1)
		}
		if *ftdcDir != "" {
			if err := os.MkdirAll(*ftdcDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "trustload: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*ftdcDir, res.Name+".ftdc")
			if err := os.WriteFile(path, res.Capture, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "trustload: %v\n", err)
				os.Exit(1)
			}
		}
		results = append(results, res)
		fmt.Printf("%-28s %10d %12.0f %9.2fµs %9.2fµs %8d\n",
			res.Name, res.Ops, res.OpsPerSec,
			float64(res.P50Ns)/1e3, float64(res.P99Ns)/1e3, res.AllocsPerOp)
	}

	if *jsonPath != "" {
		report := loadgen.NewReport(results)
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "trustload: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "trustload: %v\n", err)
			os.Exit(1)
		}
	}
}
