// Command trustdevice simulates a FLock-equipped phone talking to a
// running trustserver over HTTP: it enrolls its owner, registers an
// account, logs in, and browses under continuous authentication.
//
// Usage (with a trustserver on :8443 started with the same -caseed):
//
//	trustdevice -server http://localhost:8443 -account alice -caseed 2012
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"trust/internal/device"
	"trust/internal/fingerprint"
	"trust/internal/flock"
	"trust/internal/geom"
	"trust/internal/pki"
	"trust/internal/placement"
	"trust/internal/touch"
	"trust/internal/webserver"
)

func main() {
	var (
		server  = flag.String("server", "http://localhost:8443", "trustserver base URL")
		account = flag.String("account", "alice", "account name to register")
		caSeed  = flag.Uint64("caseed", 2012, "deterministic CA seed shared with the server")
		seed    = flag.Uint64("seed", 7, "device seed")
		binWire = flag.Bool("binary", false, "use the compact binary wire codec instead of JSON")
	)
	flag.Parse()

	ca, err := pki.NewCA("trust-root", pki.NewDeterministicRand(*caSeed))
	if err != nil {
		log.Fatalf("trustdevice: CA: %v", err)
	}
	pl := placement.Placement{Sensors: []geom.Rect{geom.RectWH(180, 660, 120, 120)}}
	mod, err := flock.New(flock.DefaultConfig(pl), ca, "trustdevice", *seed)
	if err != nil {
		log.Fatalf("trustdevice: %v", err)
	}
	owner := fingerprint.Synthesize(*seed+1000, fingerprint.Loop)
	if err := mod.Enroll(fingerprint.NewTemplate(owner)); err != nil {
		log.Fatalf("trustdevice: enroll: %v", err)
	}
	dev := device.New("trustdevice", mod, &device.HTTP{BaseURL: *server, Client: http.DefaultClient, Binary: *binWire})

	cert, err := webserver.FetchCertificate(http.DefaultClient, *server)
	if err != nil {
		log.Fatalf("trustdevice: fetching server certificate: %v", err)
	}
	if err := cert.Verify(ca.PublicKey(), pki.RoleServer); err != nil {
		log.Fatalf("trustdevice: server certificate rejected: %v", err)
	}
	fmt.Printf("server certificate for %s verified against CA\n", cert.Subject)

	now := touchUntilVerified(dev, owner, 0)
	if err := dev.Register(now, *account, "recovery-pw"); err != nil {
		log.Fatalf("trustdevice: register: %v", err)
	}
	fmt.Printf("registered account %q (Fig 9 flow)\n", *account)

	now = touchUntilVerified(dev, owner, now)
	if err := dev.Login(now, cert, *account); err != nil {
		log.Fatalf("trustdevice: login: %v", err)
	}
	fmt.Println("logged in; session key established (Fig 10 flow)")

	for _, action := range []string{"view-statement", "home"} {
		now = touchUntilVerified(dev, owner, now)
		if err := dev.Browse(now, action); err != nil {
			log.Fatalf("trustdevice: browse %s: %v", action, err)
		}
		fmt.Printf("  request %-16s ok (continuous auth)\n", action)
	}
	fmt.Println("done — server /trust/audit shows the frame-hash log verdict")
}

// touchUntilVerified delivers deliberate button touches until the
// module verifies one.
func touchUntilVerified(dev *device.Device, owner *fingerprint.Finger, start time.Duration) time.Duration {
	now := start
	for i := 0; i < 50; i++ {
		ev := touch.Event{At: now, Pos: geom.Point{X: 240, Y: 720}, Pressure: 0.7, RadiusMM: 4.2, SpeedMMS: 1}
		out := dev.Touch(ev, owner)
		now += 400 * time.Millisecond
		if out.Kind == flock.Matched {
			return now
		}
	}
	log.Fatal("trustdevice: owner never verified on the button")
	return now
}
