// Benchmarks regenerating every table and figure of the paper (one
// bench per artifact, per DESIGN.md section 4) plus the ablation
// experiments. Each iteration rebuilds the artifact from scratch, so
// ns/op measures the full simulation cost; the artifact text itself is
// attached via b.Log on the first iteration (visible with -v) and via
// cmd/benchtab.
package trust

import (
	"testing"
	"time"

	"trust/internal/analysis"
	"trust/internal/ftdc"
	"trust/internal/harness"
)

// benchArtifact runs a generator b.N times and sanity-checks it.
func benchArtifact(b *testing.B, gen func() (harness.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Rendering the artifact into the log is not part of the
			// simulation cost being measured.
			b.StopTimer()
			b.Log("\n" + r.String())
			b.StartTimer()
		}
	}
}

// BenchmarkTable1 regenerates Table I: the three authentication
// approaches compared (E1).
func BenchmarkTable1(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Table1(harness.Seed) })
}

// BenchmarkTable2 regenerates Table II: sensor designs and simulated
// responses (E2).
func BenchmarkTable2(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Table2() })
}

// BenchmarkFig1 regenerates the touchscreen sensing experiment (E3).
func BenchmarkFig1(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig1(harness.Seed) })
}

// BenchmarkFig2 regenerates the TFT cell-array imaging experiment (E4).
func BenchmarkFig2(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig2(harness.Seed) })
}

// BenchmarkFig3 regenerates the sensing-technology comparison (E5).
func BenchmarkFig3(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig3() })
}

// BenchmarkFig4 regenerates the readout-architecture ablation (E6).
func BenchmarkFig4(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig4(harness.Seed) })
}

// BenchmarkFig5 regenerates the FLock end-to-end latency/energy
// experiment (E7).
func BenchmarkFig5(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig5(harness.Seed) })
}

// BenchmarkFig6 regenerates the opportunistic-authentication pipeline
// funnel (E8).
func BenchmarkFig6(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig6(harness.Seed) })
}

// BenchmarkFig7 regenerates the three users' touch distributions (E9).
func BenchmarkFig7(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig7(harness.Seed) })
}

// BenchmarkFig8 regenerates the multi-server/multi-device component
// matrix (E10).
func BenchmarkFig8(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig8(harness.Seed) })
}

// BenchmarkFig9 regenerates the registration protocol transcript with
// the tamper matrix (E11).
func BenchmarkFig9(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig9(harness.Seed) })
}

// BenchmarkFig10 regenerates the continuous-authentication protocol
// transcript (E12).
func BenchmarkFig10(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.Fig10(harness.Seed) })
}

// BenchmarkPlacement regenerates the coverage-vs-sensors sweep (X1).
func BenchmarkPlacement(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XPlacement(harness.Seed) })
}

// BenchmarkWindowPolicy regenerates the k-of-n policy sweep (X2).
func BenchmarkWindowPolicy(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XWindow(harness.Seed) })
}

// BenchmarkAttacks regenerates the security attack suite (X3).
func BenchmarkAttacks(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XAttacks(harness.Seed) })
}

// BenchmarkEnergy regenerates the opportunistic-vs-always-on energy
// comparison (X4).
func BenchmarkEnergy(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XEnergy(harness.Seed) })
}

// BenchmarkFrameAudit regenerates the frame-hash audit scaling (X5).
func BenchmarkFrameAudit(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XFrameAudit(harness.Seed) })
}

// BenchmarkTransfer regenerates the identity transfer/reset flows (X6).
func BenchmarkTransfer(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XTransfer(harness.Seed) })
}

// BenchmarkFuzzyVault regenerates the fuzzy-vault comparison (X7).
func BenchmarkFuzzyVault(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XFuzzyVault(harness.Seed) })
}

// BenchmarkModalities regenerates the keystroke-vs-fingerprint
// comparison (X8).
func BenchmarkModalities(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XModalities(harness.Seed) })
}

// BenchmarkHijack regenerates the session-hijack window comparison
// (X9).
func BenchmarkHijack(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XHijack(harness.Seed) })
}

// BenchmarkImagePipeline regenerates the CV-vs-statistical extraction
// validation (X10).
func BenchmarkImagePipeline(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XImagePipeline(harness.Seed) })
}

// BenchmarkAdaptation regenerates the template-aging experiment (X11).
func BenchmarkAdaptation(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XAdaptation(harness.Seed) })
}

// BenchmarkNoise regenerates the comparator-noise robustness sweep
// (X12).
func BenchmarkNoise(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XNoise(harness.Seed) })
}

// BenchmarkPersonalization regenerates the placement personalization
// comparison (X13).
func BenchmarkPersonalization(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XPersonalization(harness.Seed) })
}

// BenchmarkChaos regenerates the lossy-network chaos sweep (X14).
func BenchmarkChaos(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XChaos(harness.Seed) })
}

// BenchmarkStreamChaos regenerates the streamed-transport chaos sweep
// (X14b): mid-frame cuts and torn writes vs retry budget.
func BenchmarkStreamChaos(b *testing.B) {
	benchArtifact(b, func() (harness.Result, error) { return harness.XStreamChaos(harness.Seed) })
}

// BenchmarkTrustlint measures the wall time of the full static-analysis
// sweep (cmd/trustlint over every package in the module) with the
// package-list cache warm, so analyzer cost is tracked in
// BENCH_harness.json like the artifact generators.
func BenchmarkTrustlint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		findings, err := analysis.Lint(".", "./...")
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) > 0 {
			b.Fatalf("tree has %d trustlint finding(s); run go run ./cmd/trustlint ./...", len(findings))
		}
	}
}

// BenchmarkTrustlintColdList is the same sweep with the package-list
// cache dropped every iteration, so each run pays the full
// `go list -export -deps -test -json` enumeration — the first-run cost
// a fresh trustlint process sees. The gap to BenchmarkTrustlint is what
// the cache buys.
func BenchmarkTrustlintColdList(b *testing.B) {
	for i := 0; i < b.N; i++ {
		analysis.ResetListCache()
		findings, err := analysis.Lint(".", "./...")
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) > 0 {
			b.Fatalf("tree has %d trustlint finding(s); run go run ./cmd/trustlint ./...", len(findings))
		}
	}
}

// BenchmarkFTDCSample measures the telemetry sampling hot path — one
// server-sized delta row (74 columns) per op. The allocs/op figure is
// the zero-alloc claim behind leaving capture enabled in every sweep;
// benchtab -json records it in BENCH_harness.json as FTDCSample.
func BenchmarkFTDCSample(b *testing.B) {
	names := make([]string, 74)
	for i := range names {
		names[i] = "metric_column_" + string(rune('a'+i%26)) + string(rune('a'+i/26))
	}
	c := ftdc.NewCapture(ftdc.NewSchema(names))
	vals := make([]int64, len(names))
	var now int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += int64(time.Millisecond)
		for j := range vals {
			vals[j] += int64(j&7) - 3
		}
		c.Sample(now, vals)
	}
}
