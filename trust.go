// Package trust is the public API of the TRUST reproduction: continuous
// remote mobile identity management using a biometric-integrated
// touch-display (Feng et al., MICRO 2012 workshops).
//
// The package re-exports the stable surface of the internal packages:
//
//   - World / NewWorld — the full remote scenario (CA, servers, FLock
//     devices, the three reference users, optimized sensor placement).
//   - LocalDevice / RunLocalSession — the local identity management
//     scenario: unlock flow, opportunistic capture, k-of-n risk engine,
//     pre-defined responses.
//   - Attack suite, experiment harness, and the sensor-placement
//     optimizer for design exploration.
//
// See examples/ for runnable entry points and DESIGN.md for the system
// inventory.
package trust

import (
	"time"

	"trust/internal/attack"
	"trust/internal/baseline"
	"trust/internal/core"
	"trust/internal/device"
	"trust/internal/extract"
	"trust/internal/fingerprint"
	"trust/internal/flock"
	"trust/internal/frame"
	"trust/internal/geom"
	"trust/internal/harness"
	"trust/internal/pki"
	"trust/internal/placement"
	"trust/internal/sensor"
	"trust/internal/sim"
	"trust/internal/touch"
	"trust/internal/touchscreen"
	"trust/internal/webserver"
)

// Core scenario types.
type (
	// World wires a CA, web servers, and FLock devices into the remote
	// scenario of the paper's Fig 8.
	World = core.World
	// User couples a touch-behaviour model with a synthetic fingertip.
	User = core.User
	// LocalDevice is the local identity management scenario.
	LocalDevice = core.LocalDevice
	// LocalPolicy is the k-of-n window policy with responses.
	LocalPolicy = core.LocalPolicy
	// SessionReport summarizes a simulated local session.
	SessionReport = core.SessionReport
	// Decision is a risk-engine verdict.
	Decision = core.Decision
	// Device is the untrusted phone host embedding a FLock module.
	Device = device.Device
	// Malware models a compromised browser/software stack.
	Malware = device.Malware
	// Server is a TRUST-enabled web service.
	Server = webserver.Server
	// Module is the FLock trusted hardware block.
	Module = flock.Module
	// Finger is one synthetic fingerprint.
	Finger = fingerprint.Finger
	// Placement is a chosen sensor layout.
	Placement = placement.Placement
	// Page is a served hyper-text page.
	Page = frame.Page
	// AttackResult is one attack outcome from the security suite.
	AttackResult = attack.Result
	// ExperimentResult is one regenerated table/figure.
	ExperimentResult = harness.Result
	// TouchEvent is one physical touch-down.
	TouchEvent = touch.Event
	// UserModel is a touch-behaviour model (hot-spots + gestures).
	UserModel = touch.UserModel
	// DensityGrid is a touch-density histogram (Fig 7).
	DensityGrid = touch.DensityGrid
	// Point and Rect are screen-space geometry.
	Point = geom.Point
	Rect  = geom.Rect
	// RNG is the deterministic random stream every simulation uses.
	RNG = sim.RNG
	// CA is the certificate authority of the deployment.
	CA = pki.CA
)

// NewWorld builds the full remote scenario from a seed: CA, the three
// Fig 7 reference users, and a sensor placement optimized on their
// combined touch density.
func NewWorld(seed uint64) (*World, error) { return core.NewWorld(seed) }

// NewLocalDevice wraps a FLock module with the local risk policy; the
// unlock button sits over firstSensor.
func NewLocalDevice(m *Module, policy LocalPolicy, firstSensor Rect) (*LocalDevice, error) {
	return core.NewLocalDevice(m, policy, firstSensor)
}

// DefaultLocalPolicy returns the calibrated 2-of-12 window policy.
func DefaultLocalPolicy() LocalPolicy { return core.DefaultLocalPolicy() }

// RunLocalSession plays a generated touch session through a local
// device; see core.RunLocalSession.
func RunLocalSession(d *LocalDevice, s *touch.Session, owner, impostor *Finger, impostorStart int) (SessionReport, error) {
	return core.RunLocalSession(d, s, owner, impostor, impostorStart)
}

// ReferenceUsers returns the three Fig 7 user models.
func ReferenceUsers() []UserModel { return touch.ReferenceUsers() }

// GenerateSession produces a natural interaction trace for a user.
func GenerateSession(u UserModel, screen Rect, n int, rng *RNG) (*touch.Session, error) {
	return touch.GenerateSession(u, screen, n, rng)
}

// NewRNG returns a deterministic random stream.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// SynthesizeFinger creates a per-seed synthetic fingerprint.
func SynthesizeFinger(seed uint64, pattern fingerprint.PatternType) *Finger {
	return fingerprint.Synthesize(seed, pattern)
}

// Fingerprint pattern classes.
const (
	Arch  = fingerprint.Arch
	Loop  = fingerprint.Loop
	Whorl = fingerprint.Whorl
)

// ScreenBounds returns the reference phone's screen rectangle in
// pixels.
func ScreenBounds() Rect { return touchscreen.DefaultConfig().BoundsPX() }

// OptimizePlacement runs the greedy sensor placement over a touch
// density.
func OptimizePlacement(density *DensityGrid, opts placement.Options) (Placement, error) {
	return placement.Optimize(density, opts)
}

// PlacementOptions configures OptimizePlacement.
type PlacementOptions = placement.Options

// NewDensityGrid builds an empty touch-density histogram.
func NewDensityGrid(screen Rect, cols, rows int) *DensityGrid {
	return touch.NewDensityGrid(screen, cols, rows)
}

// RunAttackSuite mounts the full Sec IV-B attack suite against fresh
// deployments and reports per-attack outcomes.
func RunAttackSuite(seed uint64) []AttackResult { return attack.All(seed) }

// AllExperiments regenerates every table and figure of the paper (see
// DESIGN.md section 4).
func AllExperiments(seed uint64) ([]ExperimentResult, error) {
	return harness.AllResults(seed)
}

// CompareTableI quantifies the paper's Table I given measured
// integrated-scheme numbers.
func CompareTableI(sessions int, integratedCoverage float64, integratedLogin time.Duration, seed uint64) []baseline.Metrics {
	return baseline.Compare(sessions, integratedCoverage, integratedLogin, seed)
}

// DefaultExperimentSeed is the seed the shipped EXPERIMENTS.md numbers
// were produced with.
const DefaultExperimentSeed = harness.Seed

// RunLocalSessionOnClock is the event-driven variant of
// RunLocalSession: touches are scheduled on a sim.Clock, composing with
// other clock-driven activity.
func RunLocalSessionOnClock(clock *sim.Clock, d *LocalDevice, s *touch.Session, owner, impostor *Finger, impostorStart int) (SessionReport, error) {
	return core.RunLocalSessionOnClock(clock, d, s, owner, impostor, impostorStart)
}

// NewClock returns a fresh virtual clock for event-driven simulations.
func NewClock() *sim.Clock { return sim.NewClock() }

// Clock is the deterministic discrete-event clock.
type Clock = sim.Clock

// ExtractMinutiae runs the image-based CV extraction pipeline
// (smoothing, thinning, crossing-number detection) on a sensor bit
// image; pitchMM is millimetres per pixel.
func ExtractMinutiae(img *sensor.BitImage, pitchMM float64) []fingerprint.Minutia {
	return extract.Minutiae(img, pitchMM, extract.DefaultOptions())
}

// ImageMatcher returns the matcher operating point calibrated for
// image-extracted feature sets.
func ImageMatcher() fingerprint.MatcherConfig { return extract.Matcher() }

// ImageModuleConfig returns a FLock configuration that runs the real
// CV extraction on every capture (see experiment X10).
func ImageModuleConfig(p Placement) flock.Config { return flock.ImageConfig(p) }
