// Multiuser: a shared family tablet. The FLock fingerprint processor
// matches captures against ALL stored templates (the paper's plural
// "biometric templates"), so each authorized user is both verified and
// identified by every touch — and revoking one user's template takes
// one call, with no passwords to rotate.
package main

import (
	"fmt"
	"log"
	"time"

	"trust"
	"trust/internal/fingerprint"
	"trust/internal/flock"
)

func main() {
	world, err := trust.NewWorld(99)
	if err != nil {
		log.Fatal(err)
	}
	tablet, err := flock.New(flock.DefaultConfig(world.Place), world.CA, "family-tablet", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Enroll three family members.
	alice := trust.SynthesizeFinger(1001, trust.Loop)
	bob := trust.SynthesizeFinger(2002, trust.Whorl)
	carol := trust.SynthesizeFinger(3003, trust.Arch)
	for _, e := range []struct {
		name   string
		finger *trust.Finger
	}{{"alice", alice}, {"bob", bob}, {"carol", carol}} {
		if err := tablet.EnrollNamed(e.name, fingerprint.NewTemplate(e.finger)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("enrolled templates: %v\n\n", tablet.EnrolledNames())

	// Everyone uses the tablet; each verified touch identifies who.
	rng := trust.NewRNG(7)
	touchOnce := func(finger *trust.Finger, now time.Duration) trust.TouchEvent {
		return trust.TouchEvent{
			At: now, Pos: world.Place.Sensors[0].Center(),
			Pressure: 0.7, RadiusMM: 4.2, SpeedMMS: 1,
			FingerOffsetMM: trust.Point{X: rng.Normal(0, 1.2), Y: rng.Normal(0, 1.5)},
		}
	}
	now := time.Duration(0)
	ids := map[string]int{}
	fingers := map[string]*trust.Finger{"alice": alice, "bob": bob, "carol": carol}
	order := []string{"alice", "bob", "carol"}
	for i := 0; i < 45; i++ {
		who := order[i%3]
		out := tablet.HandleTouch(touchOnce(fingers[who], now), fingers[who])
		now += 500 * time.Millisecond
		if out.Kind == flock.Matched {
			ids[out.Template]++
			if out.Template != who {
				fmt.Printf("  MISIDENTIFIED: %s's touch attributed to %s\n", who, out.Template)
			}
		}
	}
	fmt.Println("verified touches per identified user:")
	for _, name := range order {
		fmt.Printf("  %-6s %d\n", name, ids[name])
	}

	// Bob moves out: revoke his template.
	if err := tablet.RevokeTemplate("bob"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrevoked bob; remaining templates: %v\n", tablet.EnrolledNames())
	bobMatches := 0
	for i := 0; i < 15; i++ {
		out := tablet.HandleTouch(touchOnce(bob, now), bob)
		now += 500 * time.Millisecond
		if out.Kind == flock.Matched {
			bobMatches++
		}
	}
	fmt.Printf("bob's post-revocation verified touches: %d (his finger is now an impostor's)\n", bobMatches)
	if bobMatches > 0 {
		log.Fatal("revoked user still verifies")
	}

	// Alice still verifies fine.
	aliceMatches := 0
	for i := 0; i < 15; i++ {
		out := tablet.HandleTouch(touchOnce(alice, now), alice)
		now += 500 * time.Millisecond
		if out.Kind == flock.Matched {
			aliceMatches++
		}
	}
	fmt.Printf("alice still verifies: %d/15 touches\n", aliceMatches)
}
