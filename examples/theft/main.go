// Theft: the paper's loss/recovery story. A phone is stolen mid-use:
// the impostor's touches fail continuous authentication, the device
// locks, and the server revokes the session. The owner then resets her
// identity at the server with her recovery password and — having bought
// a new phone — transfers her identity from a backup device, encrypted
// to the new device's built-in key (Sec IV-B Identity Reset/Transfer).
package main

import (
	"fmt"
	"log"

	"trust"
	"trust/internal/fingerprint"
	"trust/internal/flock"
)

func main() {
	world, err := trust.NewWorld(77)
	if err != nil {
		log.Fatal(err)
	}
	bank, err := world.AddServer("bank.example")
	if err != nil {
		log.Fatal(err)
	}
	const user = "user3-index-finger"
	phone, err := world.AddDevice("stolen-phone", user, "bank.example")
	if err != nil {
		log.Fatal(err)
	}

	// Owner registers and logs in.
	now, err := world.TouchButtonUntilVerified(phone, user, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := phone.Register(now, "carol", "carols-recovery-pw"); err != nil {
		log.Fatal(err)
	}
	now, err = world.TouchButtonUntilVerified(phone, user, now)
	if err != nil {
		log.Fatal(err)
	}
	if err := phone.Login(now, bank.Certificate(), "carol"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. carol registered and logged in at bank.example")

	// --- Theft: the impostor uses the phone.
	thief := trust.SynthesizeFinger(666, trust.Whorl)
	for i := 0; i < 15; i++ {
		ev := trust.TouchEvent{
			At:  now,
			Pos: world.Place.Sensors[0].Center(),
			// Natural-looking touches — but the wrong fingerprint.
			Pressure: 0.7, RadiusMM: 4.2, SpeedMMS: 1,
		}
		phone.Touch(ev, thief)
		now += 400 * 1e6 // 400 ms
	}
	verified, window := phone.Module.RiskFactor(12)
	fmt.Printf("2. phone stolen: last %d touches carry %d verifications\n", window, verified)

	// The thief's transfer request dies at the server's risk policy.
	if err := phone.Browse(now, "confirm-transfer"); err != nil {
		fmt.Printf("3. thief's transfer rejected: %v\n", err)
	} else {
		log.Fatal("thief's transfer was accepted!")
	}
	if bank.SessionAlive(phone.Session().ID) {
		log.Fatal("session should be revoked")
	}
	fmt.Println("   session revoked by the bank")

	// --- Recovery: identity reset with the fallback password.
	if err := bank.ResetIdentity(now, "carol", "wrong-guess"); err == nil {
		log.Fatal("reset with wrong password accepted")
	}
	if err := bank.ResetIdentity(now, "carol", "carols-recovery-pw"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("4. carol reset her identity at the bank (old device key unbound)")

	// --- New phone: re-register...
	newPhone, err := world.AddDevice("new-phone", user, "bank.example")
	if err != nil {
		log.Fatal(err)
	}
	now, err = world.TouchButtonUntilVerified(newPhone, user, now)
	if err != nil {
		log.Fatal(err)
	}
	if err := newPhone.Register(now, "carol", "carols-recovery-pw"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("5. new phone re-registered carol with a fresh key pair")

	// --- Identity transfer: carol also had a backup tablet with other
	// service bindings; she moves that identity to the new phone.
	backup, err := flock.New(flock.DefaultConfig(world.Place), world.CA, "backup-tablet", 999)
	if err != nil {
		log.Fatal(err)
	}
	owner := world.Users[user]
	if err := backup.Enroll(fingerprint.NewTemplate(owner.Finger)); err != nil {
		log.Fatal(err)
	}
	serverCert := bank.Certificate()
	if _, err := backup.NewServiceKeys("mail.example", "carol-mail", serverCert.Key()); err != nil {
		log.Fatal(err)
	}
	// The transfer must be authorized by carol's fingerprint on the
	// source device. Successive touches land on slightly different
	// parts of the fingertip, as real touches do.
	rng := trust.NewRNG(5)
	for i := 0; i < 50; i++ {
		ev := trust.TouchEvent{
			At: now, Pos: world.Place.Sensors[0].Center(),
			Pressure: 0.7, RadiusMM: 4.2, SpeedMMS: 1,
			FingerOffsetMM: trust.Point{X: rng.Normal(0, 1.2), Y: rng.Normal(0, 1.5)},
		}
		out := backup.HandleTouch(ev, owner.Finger)
		now += 400 * 1e6
		if out.Kind == flock.Matched {
			break
		}
	}
	blob, err := backup.ExportIdentity(now, newPhone.Module.DeviceCert())
	if err != nil {
		log.Fatal(err)
	}
	if err := newPhone.Module.ImportIdentity(blob); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6. identity transferred from backup tablet: new phone now holds bindings for %v\n",
		newPhone.Module.Domains())
	fmt.Println("\nrecovery complete: the thief got nothing, carol kept everything")
}
