// Imagepipeline: the FLock fingerprint processor running the real CV
// stack. A finger is enrolled from an actual full-finger scan image;
// every touch then images the sensor window, skeletonizes it, extracts
// crossing-number minutiae, and matches — no simulation shortcut in the
// biometric path (compare experiment X10).
package main

import (
	"fmt"
	"log"
	"time"

	"trust"
	"trust/internal/flock"
	"trust/internal/geom"
	"trust/internal/sensor"
)

func main() {
	world, err := trust.NewWorld(7)
	if err != nil {
		log.Fatal(err)
	}
	owner := world.Users["user1-right-thumb"]

	// 1. Enrolment: a finger-sized scanner (16x20 mm at 50 um) images
	// the whole fingertip once.
	enrollCfg := sensor.Config{Name: "enroll", CellPitchUM: 50, Cols: 320, Rows: 400, ClockHz: 4e6, MuxWidth: 8}
	scanner, err := sensor.New(enrollCfg, trust.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	scan := scanner.Scan(func(p geom.Point) float64 { return owner.Finger.RidgeValue(p) },
		scanner.FullRegion(), sensor.ScanOptions{})
	fmt.Printf("enrolment scan: %dx%d cells in %v\n", enrollCfg.Cols, enrollCfg.Rows, scan.Elapsed.Round(time.Microsecond))
	fmt.Println("scan excerpt (the actual ridge image the CV stack sees):")
	fmt.Println(cropASCII(scan, 10))

	minutiae := trust.ExtractMinutiae(scan.Bits, 0.05)
	fmt.Printf("CV extraction: %d minutiae (smooth -> Zhang-Suen skeleton -> crossing numbers)\n\n", len(minutiae))

	// 2. A FLock module in image-pipeline mode, enrolled from the scan.
	module, err := flock.New(trust.ImageModuleConfig(world.Place), world.CA, "cv-phone", 9)
	if err != nil {
		log.Fatal(err)
	}
	if err := module.EnrollFromScan("owner", scan.Bits, 0.05); err != nil {
		log.Fatal(err)
	}

	// 3. Touches: every capture is scanned, extracted, and matched.
	rng := trust.NewRNG(3)
	impostor := trust.SynthesizeFinger(666, trust.Whorl)
	ownerMatched, impostorMatched := 0, 0
	const touches = 20
	var now time.Duration
	for i := 0; i < touches; i++ {
		ev := trust.TouchEvent{
			At: now, Pos: world.Place.Sensors[0].Center(),
			Pressure: 0.75, RadiusMM: 4.2, SpeedMMS: 1,
			FingerOffsetMM: trust.Point{X: rng.Normal(0, 1.2), Y: rng.Normal(0, 1.5)},
		}
		if module.HandleTouch(ev, owner.Finger).Kind == flock.Matched {
			ownerMatched++
		}
		now += 500 * time.Millisecond
		ev.At = now
		if module.HandleTouch(ev, impostor).Kind == flock.Matched {
			impostorMatched++
		}
		now += 500 * time.Millisecond
	}
	fmt.Printf("owner touches verified:    %d/%d\n", ownerMatched, touches)
	fmt.Printf("impostor touches verified: %d/%d\n", impostorMatched, touches)
	if impostorMatched > 0 {
		log.Fatal("impostor verified through the CV pipeline")
	}
	fmt.Println("\nthe zero-FAR CV operating point trades some genuine accepts for")
	fmt.Println("hard impostor rejection — see `benchtab -x imagepipeline` for the comparison")
}

// cropASCII renders the upper-left corner of a scan.
func cropASCII(scan sensor.ScanResult, rows int) string {
	full := scan.Bits.ASCII(4)
	out := ""
	count := 0
	for _, line := range splitLines(full) {
		out += line[:min(len(line), 60)] + "\n"
		count++
		if count >= rows {
			break
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
