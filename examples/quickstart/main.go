// Quickstart: enroll a user on a FLock device, run a short natural
// session, and watch continuous, transparent authentication happen —
// the paper's local identity management scenario in ~60 lines of API.
package main

import (
	"fmt"
	"log"
	"time"

	"trust"
	"trust/internal/flock"
)

func main() {
	// A World bundles the CA, the three reference users of the paper's
	// Fig 7, and a sensor placement optimized on their touch density.
	world, err := trust.NewWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor placement: %d transparent TFT patches covering %.1f%% of the screen\n",
		len(world.Place.Sensors), world.Place.AreaFraction*100)

	// Build a phone and enroll the owner the way real hardware would:
	// repeated deliberate touches on an enrolment target over a sensor,
	// merged into a template after a mutual-consistency check.
	owner := world.Users["user1-right-thumb"]
	module, err := flock.New(flock.DefaultConfig(world.Place), world.CA, "quickstart-phone", 7)
	if err != nil {
		log.Fatal(err)
	}
	enrollment, err := module.BeginEnrollment("owner")
	if err != nil {
		log.Fatal(err)
	}
	rng := trust.NewRNG(99)
	var at time.Duration
	for touches := 0; ; touches++ {
		if touches > 60 {
			log.Fatal("enrolment never completed")
		}
		ev := trust.TouchEvent{
			At: at, Pos: world.Place.Sensors[0].Center(),
			Pressure: 0.75, RadiusMM: 4.2, SpeedMMS: 1,
			FingerOffsetMM: trust.Point{X: rng.Normal(0, 1.2), Y: rng.Normal(0, 1.5)},
		}
		done, err := enrollment.AddTouch(ev, owner.Finger)
		if err != nil {
			log.Fatal(err)
		}
		at += 400 * time.Millisecond
		if done {
			break
		}
	}
	if err := enrollment.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %q from deliberate touches (%d rejected at the quality gate)\n",
		module.EnrolledNames()[0], enrollment.Rejected())
	phone, err := trust.NewLocalDevice(module, trust.DefaultLocalPolicy(), world.Place.Sensors[0])
	if err != nil {
		log.Fatal(err)
	}

	// Generate 150 natural touches (taps, swipes, pinches) and play
	// them through the device. Every touch is an opportunistic
	// authentication attempt — no passwords, no explicit logins.
	session, err := trust.GenerateSession(owner.Model, world.Screen, 150, trust.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	report, err := trust.RunLocalSession(phone, session, owner.Finger, nil, -1)
	if err != nil {
		log.Fatal(err)
	}

	st := report.Stats
	fmt.Printf("\nsession: %d touches over %v\n", report.Touches, report.Duration.Round(time.Second))
	fmt.Printf("  landed outside sensors: %d\n", st.OutsideSensor)
	fmt.Printf("  discarded at quality gate: %d\n", st.LowQuality)
	fmt.Printf("  verified against template: %d\n", st.Matched)
	fmt.Printf("  confirmed mismatches: %d\n", st.Mismatched)
	fmt.Printf("verified-capture rate: %.1f%% — continuous protection with zero user effort\n",
		report.CaptureRate()*100)
	fmt.Printf("device locked by risk engine: %v\n", report.Locked)

	fmt.Println("\nidentity-risk trace (first 15 touches):")
	for i, p := range report.Trace {
		if i >= 15 {
			break
		}
		fmt.Printf("  touch %2d  %-15s risk %.2f\n", p.Touch, p.Outcome, p.Risk)
	}
}
