// Banking: the paper's remote identity management scenario end to end.
// A user registers at a bank with her fingerprint (Fig 9), logs in and
// browses under continuous authentication (Fig 10) — then the phone's
// browser is compromised: malware repaints the screen to trick her into
// confirming a transfer. The request goes through online (the touch was
// real), but the frame-hash audit exposes the deception.
package main

import (
	"fmt"
	"log"

	"trust"
	"trust/internal/device"
	"trust/internal/frame"
)

func main() {
	world, err := trust.NewWorld(2012)
	if err != nil {
		log.Fatal(err)
	}
	bank, err := world.AddServer("bank.example")
	if err != nil {
		log.Fatal(err)
	}
	const user = "user2-two-thumbs"
	phone, err := world.AddDevice("alices-phone", user, "bank.example")
	if err != nil {
		log.Fatal(err)
	}

	// --- Registration (Fig 9): one verified touch on the Register
	// button binds a fresh per-service key pair to the account.
	now, err := world.TouchButtonUntilVerified(phone, user, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := phone.Register(now, "alice", "fallback-recovery-pw"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("1. registered: account `alice` bound to a device-held key pair; no password created")

	// --- Login (Fig 10): a verified touch on the Login button mints a
	// session key, encrypted to the bank's certificate.
	now, err = world.TouchButtonUntilVerified(phone, user, now)
	if err != nil {
		log.Fatal(err)
	}
	if err := phone.Login(now, bank.Certificate(), "alice"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. logged in: session established, frame hash + risk factor attached")

	// --- Honest browsing under continuous authentication.
	for _, action := range []string{"view-statement", "home"} {
		now, err = world.TouchButtonUntilVerified(phone, user, now)
		if err != nil {
			log.Fatal(err)
		}
		if err := phone.Browse(now, action); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("3. browsed %q — every request carries x-of-n touch verifications\n", action)
	}

	// --- Compromise: malware repaints pages before display. The FLock
	// display repeater hashes what is ACTUALLY shown.
	phone.Malware = &device.Malware{
		TamperFrame: func(p *frame.Page) *frame.Page {
			p.Body = "Session expired. Touch Confirm to stay logged in."
			for i := range p.Elements {
				if p.Elements[i].Action != "" {
					p.Elements[i].Label = "Confirm"
				}
			}
			return p
		},
	}
	// The next page the bank serves is repainted by the malware before
	// it reaches the screen...
	now, err = world.TouchButtonUntilVerified(phone, user, now)
	if err != nil {
		log.Fatal(err)
	}
	if err := phone.Browse(now, "home"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("4. malware now repaints every displayed page ('Session expired... Confirm')")
	// ...and the user's next touch — made while looking at the forged
	// page — triggers the transfer. The request's frame hash attests
	// what was ACTUALLY displayed.
	now, err = world.TouchButtonUntilVerified(phone, user, now)
	if err != nil {
		log.Fatal(err)
	}
	if err := phone.Browse(now, "confirm-transfer"); err != nil {
		fmt.Printf("   malware transfer rejected online: %v\n", err)
	} else {
		fmt.Println("   malware-framed transfer went through online (the touch was genuine)...")
	}

	// --- The offline audit: the logged frame hash matches no standard
	// view of any page the bank served.
	report := bank.RunAudit()
	fmt.Printf("5. offline frame audit: %d entries checked, %d flagged as tampered\n",
		report.Checked, report.Tampered)
	for _, f := range report.Findings {
		if !f.OK {
			fmt.Printf("   flagged: account=%s page=%s hash=%s (no legitimate view matches)\n",
				f.Entry.Account, f.Entry.PageURL, f.Entry.Hash.Short())
		}
	}
	if report.Tampered == 0 {
		log.Fatal("expected the audit to flag the spoofed frame")
	}
	fmt.Println("\nthe bank now has cryptographic evidence the user was shown a forged page")
}
