// Placement: the paper's sensor placement design flow (Sec III-A /
// IV-A). Collect touch logs from the three reference users, build the
// Fig 7 density heatmaps, then greedily place transparent TFT sensor
// patches over the hot-spots and report how much more touch coverage
// the optimized layout captures than its area share.
package main

import (
	"fmt"
	"log"

	"trust"
	"trust/internal/placement"
)

func main() {
	screen := trust.ScreenBounds()
	rng := trust.NewRNG(7)

	// 1. Touch logs: 4,000 natural touches per user.
	combined := trust.NewDensityGrid(screen, 24, 40)
	for _, u := range trust.ReferenceUsers() {
		personal := trust.NewDensityGrid(screen, 24, 40)
		s, err := trust.GenerateSession(u, screen, 4000, rng)
		if err != nil {
			log.Fatal(err)
		}
		personal.AddSession(s)
		combined.AddSession(s)
		fmt.Printf("%s — touch density (Fig 7 heatmap):\n%s\n", u.Name, personal.ASCII())
	}

	// 2. Optimize: up to 8 patches of 8x8 mm (72x72 px).
	layout, err := trust.OptimizePlacement(combined, trust.PlacementOptions{
		SensorWPX: 72, SensorHPX: 72, MaxSensors: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized sensor layout:")
	for i, s := range layout.Sensors {
		fmt.Printf("  sensor %d at (%.0f, %.0f) px\n", i+1, s.Min.X, s.Min.Y)
	}
	fmt.Printf("training coverage: %.1f%% of touches on %.1f%% of the screen area (%.1fx leverage)\n\n",
		layout.Coverage*100, layout.AreaFraction*100, layout.Coverage/layout.AreaFraction)

	// 3. Held-out evaluation per user.
	fmt.Println("held-out coverage per user:")
	for _, u := range trust.ReferenceUsers() {
		s, err := trust.GenerateSession(u, screen, 2000, rng)
		if err != nil {
			log.Fatal(err)
		}
		cov := placement.EvaluateOnSession(layout, s)
		fmt.Printf("  %-22s %.1f%%\n", u.Name, cov*100)
	}

	// 4. The coverage curve: how many sensors are enough?
	curve, err := placement.CoverageCurve(combined, trust.PlacementOptions{SensorWPX: 72, SensorHPX: 72}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncoverage vs sensor count (diminishing returns):")
	for k, c := range curve {
		bar := ""
		for i := 0; i < int(c*50); i++ {
			bar += "#"
		}
		fmt.Printf("  %d sensors  %5.1f%%  %s\n", k+1, c*100, bar)
	}
}
