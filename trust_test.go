package trust

import (
	"testing"
	"time"
)

// The facade tests exercise the public API the examples use, end to
// end, without reaching into internal packages.

func TestPublicLocalScenario(t *testing.T) {
	w, err := NewWorld(7)
	if err != nil {
		t.Fatal(err)
	}
	users := ReferenceUsers()
	if len(users) != 3 {
		t.Fatalf("%d reference users", len(users))
	}
	_ = w
}

func TestPublicRemoteScenario(t *testing.T) {
	w, err := NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := w.AddServer("bank.example")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := w.AddDevice("phone", "user2-two-thumbs", "bank.example")
	if err != nil {
		t.Fatal(err)
	}
	now, err := w.TouchButtonUntilVerified(dev, "user2-two-thumbs", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Register(now, "acct", "pw"); err != nil {
		t.Fatal(err)
	}
	now, err = w.TouchButtonUntilVerified(dev, "user2-two-thumbs", now)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Login(now, srv.Certificate(), "acct"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPlacementFlow(t *testing.T) {
	screen := ScreenBounds()
	g := NewDensityGrid(screen, 24, 40)
	rng := NewRNG(9)
	for _, u := range ReferenceUsers() {
		s, err := GenerateSession(u, screen, 500, rng)
		if err != nil {
			t.Fatal(err)
		}
		g.AddSession(s)
	}
	p, err := OptimizePlacement(g, PlacementOptions{SensorWPX: 72, SensorHPX: 72, MaxSensors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sensors) != 4 || p.Coverage <= 0 {
		t.Fatalf("placement %+v", p)
	}
}

func TestPublicAttackSuite(t *testing.T) {
	results := RunAttackSuite(11)
	if len(results) == 0 {
		t.Fatal("no attacks ran")
	}
	for _, r := range results {
		if !r.Defended {
			t.Errorf("attack %s not defended", r.Name)
		}
	}
}

func TestPublicTableI(t *testing.T) {
	rows := CompareTableI(50, 0.3, 20*time.Millisecond, 1)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestPublicFingerSynthesis(t *testing.T) {
	f := SynthesizeFinger(5, Whorl)
	if len(f.Minutiae()) == 0 {
		t.Fatal("no minutiae")
	}
}
