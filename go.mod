module trust

go 1.22
